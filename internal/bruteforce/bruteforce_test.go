package bruteforce

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMinBisectionTwoCliques(t *testing.T) {
	// Two 3-cliques joined by one bridge edge: optimum bisection cuts
	// exactly the bridge.
	h := mkHG(t, 6, [][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	p, cut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("cut = %d, want 1", cut)
	}
	if !partition.IsBisection(p) {
		t.Error("result not a bisection")
	}
	if p.Side(0) != p.Side(1) || p.Side(1) != p.Side(2) {
		t.Errorf("left clique split: %v", p.Sides())
	}
	if p.Side(3) != p.Side(4) || p.Side(4) != p.Side(5) {
		t.Errorf("right clique split: %v", p.Sides())
	}
}

func TestMinBisectionHyperedges(t *testing.T) {
	// A single 4-pin net over all vertices always crosses any
	// bipartition, so the optimum is 1.
	h := mkHG(t, 4, [][]int{{0, 1, 2, 3}})
	_, cut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
}

func TestMinCutUnconstrainedPrefersLopsided(t *testing.T) {
	// Path of 5 vertices: cutting off one end vertex costs 1 edge; a
	// bisection also costs 1, but with a star the difference shows.
	h := mkHG(t, 5, [][]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	_, cut, err := MinCutUnconstrained(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("unconstrained cut = %d, want 1 (peel one leaf)", cut)
	}
	_, bcut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if bcut != 2 {
		t.Errorf("bisection cut = %d, want 2", bcut)
	}
}

func TestMinCutDisconnected(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {2, 3}})
	p, cut, err := MinBisection(h)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Errorf("cut = %d, want 0", cut)
	}
	if p.Side(0) != p.Side(1) || p.Side(2) != p.Side(3) {
		t.Errorf("components split: %v", p.Sides())
	}
}

func TestErrors(t *testing.T) {
	h := mkHG(t, 1, [][]int{{0}})
	if _, _, err := MinBisection(h); err == nil {
		t.Error("accepted 1-vertex instance")
	}
	big := hypergraph.NewBuilder(MaxVertices + 1)
	big.AddEdge(0, 1)
	hb := big.MustBuild()
	if _, _, err := MinBisection(hb); err == nil {
		t.Error("accepted oversized instance")
	}
	if _, _, err := MinQuotientCut(hb); err == nil {
		t.Error("quotient accepted oversized instance")
	}
}

func TestRBalanceRespected(t *testing.T) {
	h := mkHG(t, 6, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	for _, r := range []int{0, 2, 4} {
		p, _, err := MinCut(h, r)
		if err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if !partition.IsRBipartition(p, r) {
			t.Errorf("r=%d violated: %v", r, p.Sides())
		}
	}
}

func TestRZeroOddFails(t *testing.T) {
	h := mkHG(t, 3, [][]int{{0, 1}, {1, 2}})
	if _, _, err := MinCut(h, 0); err == nil {
		t.Error("r=0 on odd vertex count should fail")
	}
}

func TestMinQuotientCut(t *testing.T) {
	// Barbell: two triangles and a bridge. Quotient optimum cuts the
	// bridge: 1/3.
	h := mkHG(t, 6, [][]int{
		{0, 1}, {1, 2}, {0, 2},
		{3, 4}, {4, 5}, {3, 5},
		{2, 3},
	})
	_, q, err := MinQuotientCut(h)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1.0/3.0 {
		t.Errorf("quotient = %g, want 1/3", q)
	}
}

// TestPropertyBisectionOptimalityCertificate: the reported cut really
// is achieved by the reported partition, the partition is valid, and no
// random bisection beats it.
func TestPropertyBisectionOptimalityCertificate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		m := 1 + rng.Intn(12)
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			size := 2 + rng.Intn(3)
			pins := make([]int, size)
			for j := range pins {
				pins[j] = rng.Intn(n)
			}
			b.AddEdge(pins...)
		}
		h, err := b.Build()
		if err != nil {
			return false
		}
		p, cut, err := MinBisection(h)
		if err != nil {
			return false
		}
		if err := p.Validate(h); err != nil {
			return false
		}
		if partition.CutSize(h, p) != cut || !partition.IsBisection(p) {
			return false
		}
		// Random bisections cannot beat the optimum.
		for trial := 0; trial < 20; trial++ {
			q := partition.New(n)
			perm := rng.Perm(n)
			for i, v := range perm {
				if i < n/2 {
					q.Assign(v, partition.Left)
				} else {
					q.Assign(v, partition.Right)
				}
			}
			if partition.CutSize(h, q) < cut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSizeBoundary pins the behavior at the uint32→uint64 mask
// boundary: 31- and 32-vertex instances must be rejected with a clear
// size error (never silently enumerated with a truncated mask), for
// every entry point.
func TestSizeBoundary(t *testing.T) {
	for _, n := range []int{31, 32, MaxVertices + 1} {
		path := make([][]int, 0, n-1)
		for i := 0; i+1 < n; i++ {
			path = append(path, []int{i, i + 1})
		}
		h := mkHG(t, n, path)
		if _, _, err := MinBisection(h); err == nil {
			t.Errorf("n=%d: MinBisection accepted oversize instance", n)
		} else if !strings.Contains(err.Error(), "exceeds enumeration limit") {
			t.Errorf("n=%d: unclear error %v", n, err)
		}
		if _, _, err := MinCutUnconstrained(h); err == nil {
			t.Errorf("n=%d: MinCutUnconstrained accepted oversize instance", n)
		}
		if _, _, err := MinQuotientCut(h); err == nil {
			t.Errorf("n=%d: MinQuotientCut accepted oversize instance", n)
		}
	}
	// MaxVertices itself is accepted; a single spanning net is crossed
	// by every bipartition, so the enumeration stays fast and the
	// answer is exactly 1.
	pins := make([]int, MaxVertices)
	for i := range pins {
		pins[i] = i
	}
	h := mkHG(t, MaxVertices, [][]int{pins})
	if _, cut, err := MinBisection(h); err != nil || cut != 1 {
		t.Errorf("n=%d: cut=%d err=%v, want 1,nil", MaxVertices, cut, err)
	}
}

// TestApplyHighMaskBits shows the uint64 mask addresses vertices past
// bit 31 without truncation.
func TestApplyHighMaskBits(t *testing.T) {
	n := 40
	p := partition.New(n)
	apply(p, uint64(1)<<35|1, n)
	for v := 0; v < n; v++ {
		want := partition.Right
		if v == 0 || v == 35 {
			want = partition.Left
		}
		if p.Side(v) != want {
			t.Fatalf("vertex %d on %v, want %v", v, p.Side(v), want)
		}
	}
}

// TestPopcount64 exercises popcount above the old uint32 range.
func TestPopcount64(t *testing.T) {
	if got := popcount(uint64(1)<<63 | uint64(1)<<32 | 7); got != 5 {
		t.Errorf("popcount = %d, want 5", got)
	}
}

func TestMinCutConstrainedRespectsFixed(t *testing.T) {
	// Path of 6: optimum free cut is 1 (split anywhere). Pinning the two
	// middle vertices to opposite sides forces the cut through them.
	b := hypergraph.NewBuilder(6)
	for v := 0; v+1 < 6; v++ {
		b.AddEdge(v, v+1)
	}
	h := b.MustBuild()
	c := partition.Constraint{Epsilon: 0.5, FixedSide: []int8{-1, -1, 0, 1, -1, -1}}
	p, cut, err := MinCutConstrained(h, c)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Errorf("cut = %d, want 1", cut)
	}
	if p.Side(2) != partition.Left || p.Side(3) != partition.Right {
		t.Errorf("fixed vertices moved: %v %v", p.Side(2), p.Side(3))
	}
	if got := partition.CutSize(h, p); got != cut {
		t.Errorf("reported cut %d != recomputed %d", cut, got)
	}
}

func TestMinCutConstrainedEpsilonBound(t *testing.T) {
	// Star: center + 7 leaves. The unconstrained optimum peels one leaf
	// (cut 1, split 1|7); a tight epsilon forbids that.
	b := hypergraph.NewBuilder(8)
	for v := 1; v < 8; v++ {
		b.AddEdge(0, v)
	}
	h := b.MustBuild()
	free, freeCut, err := MinCutConstrained(h, partition.Constraint{FixedSide: []int8{0}})
	if err != nil {
		t.Fatal(err)
	}
	if freeCut != 1 {
		t.Errorf("free cut = %d, want 1", freeCut)
	}
	if free.Side(0) != partition.Left {
		t.Error("fixed center moved")
	}
	c := partition.Constraint{Epsilon: 0.25} // maxSide = 5
	p, cut, err := MinCutConstrained(h, c)
	if err != nil {
		t.Fatal(err)
	}
	l, r := partition.SideWeights(h, p)
	if l > 5 || r > 5 {
		t.Errorf("sides %d|%d exceed maxSide 5", l, r)
	}
	if cut != 3 {
		// 5|3 split around the center cuts 3 leaves' nets.
		t.Errorf("constrained cut = %d, want 3", cut)
	}
}

func TestMinCutConstrainedMatchesMinCutWhenFree(t *testing.T) {
	b := hypergraph.NewBuilder(10)
	edges := [][]int{{0, 1, 2}, {2, 3}, {3, 4, 5}, {5, 6}, {6, 7, 8}, {8, 9}, {1, 4, 7}, {0, 9}, {2, 5, 8}}
	for _, e := range edges {
		b.AddEdge(e...)
	}
	h := b.MustBuild()
	_, wantCut, err := MinCutUnconstrained(h)
	if err != nil {
		t.Fatal(err)
	}
	_, gotCut, err := MinCutConstrained(h, partition.Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if gotCut != wantCut {
		t.Errorf("unconstrained MinCutConstrained cut %d != MinCut %d", gotCut, wantCut)
	}
}

func TestMinCutConstrainedInfeasible(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.AddEdge(0, 1, 2)
	h := b.MustBuild()
	// All three fixed Left: the right side can never be nonempty.
	if _, _, err := MinCutConstrained(h, partition.Constraint{FixedSide: []int8{0, 0, 0}}); err == nil {
		t.Error("all-fixed-one-side constraint accepted")
	}
}
