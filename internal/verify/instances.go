package verify

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
)

// Instance is a named test hypergraph for the differential suites.
type Instance struct {
	Name string
	H    *hypergraph.Hypergraph
}

// SmallInstances returns a deterministic family of named instances with
// n ≤ 12 vertices: structured graphs (paths, cycles, stars, cliques,
// bridged double cliques), random hypergraphs and planted/disconnected
// generator outputs at fixed seeds. Together with ExhaustiveUniform it
// is the shared instance set of the differential suite.
func SmallInstances() []Instance {
	var out []Instance
	add := func(name string, n int, edges [][]int) {
		h, err := hypergraph.FromEdges(n, edges)
		if err != nil {
			panic(fmt.Sprintf("verify: bad built-in instance %s: %v", name, err))
		}
		out = append(out, Instance{Name: name, H: h})
	}

	for _, n := range []int{2, 3, 4, 6, 8, 10, 12} {
		path := make([][]int, 0, n-1)
		for i := 0; i+1 < n; i++ {
			path = append(path, []int{i, i + 1})
		}
		if len(path) > 0 {
			add(fmt.Sprintf("path-%d", n), n, path)
		}
		if n >= 3 {
			cycle := append(append([][]int{}, path...), []int{n - 1, 0})
			add(fmt.Sprintf("cycle-%d", n), n, cycle)
			star := make([][]int, 0, n-1)
			for i := 1; i < n; i++ {
				star = append(star, []int{0, i})
			}
			add(fmt.Sprintf("star-%d", n), n, star)
		}
		if n >= 3 && n <= 8 {
			clique := [][]int{}
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					clique = append(clique, []int{i, j})
				}
			}
			add(fmt.Sprintf("clique-%d", n), n, clique)
		}
		if n >= 6 && n%2 == 0 {
			// Two cliques joined by a single bridge: optimum bisection
			// cuts exactly 1.
			half := n / 2
			bridged := [][]int{}
			for _, lo := range []int{0, half} {
				for i := lo; i < lo+half; i++ {
					for j := i + 1; j < lo+half; j++ {
						bridged = append(bridged, []int{i, j})
					}
				}
			}
			bridged = append(bridged, []int{0, half})
			add(fmt.Sprintf("bridged-%d", n), n, bridged)
		}
	}

	// One hyperedge covering everything plus singles hanging off it.
	add("bus-8", 8, [][]int{{0, 1, 2, 3, 4, 5, 6, 7}, {0, 1}, {2, 3}, {4, 5}, {6, 7}})
	// Mixed edge sizes with a repeated net.
	add("mixed-9", 9, [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8}, {0, 8}, {1, 4, 7}, {1, 4, 7}})

	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		h, err := gen.Random(12, gen.RandomConfig{NumEdges: 18, MinEdgeSize: 2, MaxEdgeSize: 4}, rng)
		if err != nil {
			panic(fmt.Sprintf("verify: gen.Random: %v", err))
		}
		out = append(out, Instance{Name: fmt.Sprintf("random-12-s%d", seed), H: h})
	}
	{
		rng := rand.New(rand.NewSource(7))
		h, err := gen.Disconnected(12, 3, 4, rng)
		if err != nil {
			panic(fmt.Sprintf("verify: gen.Disconnected: %v", err))
		}
		out = append(out, Instance{Name: "disconnected-12", H: h})
	}
	{
		rng := rand.New(rand.NewSource(5))
		h, _, err := gen.PlantedCut(12, gen.PlantedConfig{CutSize: 2, IntraEdges: 20}, rng)
		if err != nil {
			panic(fmt.Sprintf("verify: gen.PlantedCut: %v", err))
		}
		out = append(out, Instance{Name: "planted-12", H: h})
	}
	return out
}

// ExhaustiveUniform enumerates every r-uniform hypergraph on n labeled
// vertices with at least one edge: all 2^C(n,r) − 1 nonempty families
// of r-subsets. ExhaustiveUniform(4, 2) is all 63 labeled graphs on
// four vertices; keep C(n,r) small (the count is exponential in it).
func ExhaustiveUniform(n, r int) []Instance {
	subsets := combinations(n, r)
	m := len(subsets)
	if m > 20 {
		panic(fmt.Sprintf("verify: ExhaustiveUniform(%d,%d) would enumerate 2^%d instances", n, r, m))
	}
	out := make([]Instance, 0, (1<<m)-1)
	for mask := 1; mask < 1<<m; mask++ {
		b := hypergraph.NewBuilder(n)
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				b.AddEdge(subsets[i]...)
			}
		}
		h, err := b.Build()
		if err != nil {
			panic(fmt.Sprintf("verify: ExhaustiveUniform build: %v", err))
		}
		out = append(out, Instance{Name: fmt.Sprintf("u%d-%d-m%d", r, n, mask), H: h})
	}
	return out
}

// combinations returns all r-subsets of {0..n-1} in lexicographic
// order.
func combinations(n, r int) [][]int {
	var out [][]int
	idx := make([]int, r)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == r {
			cp := make([]int, r)
			copy(cp, idx)
			out = append(out, cp)
			return
		}
		for v := start; v < n; v++ {
			idx[k] = v
			rec(v+1, k+1)
		}
	}
	rec(0, 0)
	return out
}

// PlantedInstance is a difficult instance with a known planted minimum
// bisection of cutsize Cut. The pinned seeds are chosen (and re-proved
// by TestPlantedInstancesAreOptimal against internal/bruteforce) so
// that the planted cut is simultaneously the minimum bisection and the
// minimum unconstrained cut — the regime where the paper proves
// Algorithm I succeeds.
type PlantedInstance struct {
	Name string
	H    *hypergraph.Hypergraph
	// Cut is the planted (and provably optimal) cutsize.
	Cut int
}

// PlantedInstances returns the pinned planted-cut family used by the
// differential suite's optimality assertions. All instances are small
// enough for bruteforce confirmation (n ≤ 16).
func PlantedInstances() []PlantedInstance {
	var out []PlantedInstance
	for _, cfg := range []struct {
		n, cut, intra int
		seed          int64
	}{
		{8, 1, 14, 11},
		{10, 1, 18, 3},
		{12, 2, 22, 9},
		{14, 2, 26, 1},
		{16, 3, 30, 2},
	} {
		rng := rand.New(rand.NewSource(cfg.seed))
		h, planted, err := gen.PlantedCut(cfg.n, gen.PlantedConfig{CutSize: cfg.cut, IntraEdges: cfg.intra}, rng)
		if err != nil {
			panic(fmt.Sprintf("verify: gen.PlantedCut: %v", err))
		}
		if len(planted) != cfg.cut {
			panic(fmt.Sprintf("verify: planted %d crossing nets, want %d", len(planted), cfg.cut))
		}
		out = append(out, PlantedInstance{
			Name: fmt.Sprintf("planted-%d-c%d-s%d", cfg.n, cfg.cut, cfg.seed),
			H:    h,
			Cut:  cfg.cut,
		})
	}
	return out
}
