// Package verify is the shared partition-verification oracle: every
// partitioner in the library claims to return a proper bipartition with
// a correctly reported cutsize, and this package is the single place
// that claim is checked from first principles. Check recomputes every
// quantity from scratch with its own edge walk (deliberately not
// reusing the early-exit logic of internal/partition), cross-checks the
// incremental bookkeeping of internal/cutstate by replaying a full
// move walk, and returns a Report of the verified facts. The
// differential and golden-corpus suites at the repository root, the
// per-algorithm package tests, and the `hgpart -verify` flag all funnel
// through it, so a bookkeeping bug in any partitioner fails loudly in
// one well-understood place.
package verify

import (
	"fmt"

	"fasthgp/internal/cutstate"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// Report holds the independently recomputed facts about a verified
// bipartition.
type Report struct {
	// CutSize is the number of nets with pins on both sides.
	CutSize int
	// WeightedCut is the total weight of crossing nets.
	WeightedCut int64
	// Left and Right are the vertex counts per side.
	Left, Right int
	// LeftWeight and RightWeight are the vertex-weight totals per side.
	LeftWeight, RightWeight int64
}

// Imbalance returns |LeftWeight − RightWeight|.
func (r *Report) Imbalance() int64 {
	if r.LeftWeight > r.RightWeight {
		return r.LeftWeight - r.RightWeight
	}
	return r.RightWeight - r.LeftWeight
}

// CountImbalance returns | |V_L| − |V_R| |.
func (r *Report) CountImbalance() int {
	if r.Left > r.Right {
		return r.Left - r.Right
	}
	return r.Right - r.Left
}

// Check validates the fundamental invariants of a complete bipartition
// of h and returns the recomputed Report. It fails when:
//
//   - p does not cover exactly h's vertex set, leaves a vertex
//     unassigned, or leaves a side empty;
//   - the from-scratch cutsize disagrees with partition.CutSize /
//     partition.WeightedCutSize / partition.SideWeights (an
//     inconsistency inside the metric layer itself);
//   - internal/cutstate disagrees: its initial scan, a full move walk
//     (every vertex flipped once, checking each realized gain against
//     the predicted Gain, then flipped back) and its own Verify must
//     all reproduce the recomputed numbers.
//
// Check never mutates p; the cutstate walk runs on a clone. Cost is
// O(pins) — cheap enough to run after every partitioner call in tests
// and behind `hgpart -verify` on real netlists.
func Check(h *hypergraph.Hypergraph, p *partition.Bipartition) (*Report, error) {
	rep, err := recompute(h, p)
	if err != nil {
		return nil, err
	}
	// Cross-check the metric layer.
	if got := partition.CutSize(h, p); got != rep.CutSize {
		return nil, fmt.Errorf("verify: partition.CutSize %d != recomputed %d", got, rep.CutSize)
	}
	if got := partition.WeightedCutSize(h, p); got != rep.WeightedCut {
		return nil, fmt.Errorf("verify: partition.WeightedCutSize %d != recomputed %d", got, rep.WeightedCut)
	}
	l, r := partition.SideWeights(h, p)
	if l != rep.LeftWeight || r != rep.RightWeight {
		return nil, fmt.Errorf("verify: partition.SideWeights %d|%d != recomputed %d|%d", l, r, rep.LeftWeight, rep.RightWeight)
	}
	if err := checkCutState(h, p, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// CheckCut is Check plus agreement with the cutsize the partitioner
// claimed for p.
func CheckCut(h *hypergraph.Hypergraph, p *partition.Bipartition, claimed int) (*Report, error) {
	rep, err := Check(h, p)
	if err != nil {
		return nil, err
	}
	if rep.CutSize != claimed {
		return nil, fmt.Errorf("verify: claimed cutsize %d, recomputed %d", claimed, rep.CutSize)
	}
	return rep, nil
}

// CheckBalance is Check plus the Fiduccia–Mattheyses r-bipartition
// bound on vertex counts: | |V_L| − |V_R| | ≤ r.
func CheckBalance(h *hypergraph.Hypergraph, p *partition.Bipartition, r int) (*Report, error) {
	rep, err := Check(h, p)
	if err != nil {
		return nil, err
	}
	if d := rep.CountImbalance(); d > r {
		return nil, fmt.Errorf("verify: count imbalance %d exceeds r=%d (sides %d|%d)", d, r, rep.Left, rep.Right)
	}
	return rep, nil
}

// CheckTolerance is Check plus a weight-imbalance bound:
// |weight(L) − weight(R)| ≤ tol.
func CheckTolerance(h *hypergraph.Hypergraph, p *partition.Bipartition, tol int64) (*Report, error) {
	rep, err := Check(h, p)
	if err != nil {
		return nil, err
	}
	if d := rep.Imbalance(); d > tol {
		return nil, fmt.Errorf("verify: weight imbalance %d exceeds tolerance %d", d, tol)
	}
	return rep, nil
}

// CheckEpsilon is Check plus the (1+ε)·⌈w(V)/2⌉ balance contract:
// neither side's weight may exceed Constraint{Epsilon: eps}'s
// MaxSideWeight. An eps of 0 enforces the tightest admissible bound
// (the ceil itself).
func CheckEpsilon(h *hypergraph.Hypergraph, p *partition.Bipartition, eps float64) (*Report, error) {
	rep, err := Check(h, p)
	if err != nil {
		return nil, err
	}
	c := partition.Constraint{Epsilon: eps}
	if err := c.Validate(h.NumVertices(), 2); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	maxSide := c.MaxSideWeight(h.TotalVertexWeight(), 2)
	if rep.LeftWeight > maxSide || rep.RightWeight > maxSide {
		return nil, fmt.Errorf("verify: side weights %d|%d exceed max side weight %d (epsilon %g)",
			rep.LeftWeight, rep.RightWeight, maxSide, eps)
	}
	return rep, nil
}

// CheckFixed is Check plus the fixed-vertex contract: every vertex
// pinned by fixed (part 0 = Left, any other id = Right, −1 = free)
// must sit on its pinned side. The fixed slice may be shorter than the
// vertex set; the tail is free.
func CheckFixed(h *hypergraph.Hypergraph, p *partition.Bipartition, fixed []int8) (*Report, error) {
	rep, err := Check(h, p)
	if err != nil {
		return nil, err
	}
	for v, s := range fixed {
		if s < 0 {
			continue
		}
		want := partition.Left
		if s != 0 {
			want = partition.Right
		}
		if p.Side(v) != want {
			return nil, fmt.Errorf("verify: fixed vertex %d on side %v, pinned to %v", v, p.Side(v), want)
		}
	}
	return rep, nil
}

// CheckConstraint is the combined oracle gate for a full
// partition.Constraint: Check plus the ε bound (when the constraint
// carries one) plus the fixed-vertex assignment. A zero constraint
// degrades to plain Check.
func CheckConstraint(h *hypergraph.Hypergraph, p *partition.Bipartition, c partition.Constraint) (*Report, error) {
	if err := c.Validate(h.NumVertices(), 2); err != nil {
		return nil, fmt.Errorf("verify: %w", err)
	}
	var rep *Report
	var err error
	if c.HasBalance() {
		rep, err = CheckEpsilon(h, p, c.Epsilon)
	} else {
		rep, err = Check(h, p)
	}
	if err != nil {
		return nil, err
	}
	if c.HasFixed() {
		if _, err := CheckFixed(h, p, c.FixedSide); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// recompute derives the Report with verify's own full edge walk: each
// net's pins are counted per side exhaustively (no early exit), so the
// result does not share code paths with partition.Crosses.
func recompute(h *hypergraph.Hypergraph, p *partition.Bipartition) (*Report, error) {
	if p == nil {
		return nil, fmt.Errorf("verify: nil partition")
	}
	if p.Len() != h.NumVertices() {
		return nil, fmt.Errorf("verify: partition covers %d vertices, hypergraph has %d", p.Len(), h.NumVertices())
	}
	rep := &Report{}
	for v := 0; v < h.NumVertices(); v++ {
		switch p.Side(v) {
		case partition.Left:
			rep.Left++
			rep.LeftWeight += h.VertexWeight(v)
		case partition.Right:
			rep.Right++
			rep.RightWeight += h.VertexWeight(v)
		default:
			return nil, fmt.Errorf("verify: vertex %d unassigned", v)
		}
	}
	if rep.Left == 0 || rep.Right == 0 {
		return nil, fmt.Errorf("verify: side empty (left=%d right=%d)", rep.Left, rep.Right)
	}
	for e := 0; e < h.NumEdges(); e++ {
		left, right := 0, 0
		for _, v := range h.EdgePins(e) {
			if p.Side(v) == partition.Left {
				left++
			} else {
				right++
			}
		}
		if left+right != h.EdgeSize(e) {
			return nil, fmt.Errorf("verify: edge %d pin accounting broken (%d+%d != %d)", e, left, right, h.EdgeSize(e))
		}
		if left > 0 && right > 0 {
			rep.CutSize++
			rep.WeightedCut += h.EdgeWeight(e)
		}
	}
	return rep, nil
}

// checkCutState validates internal/cutstate against rep: the initial
// scan, the per-move gain prediction, and full-flip symmetry (flipping
// every vertex preserves the cut and swaps the side weights).
func checkCutState(h *hypergraph.Hypergraph, p *partition.Bipartition, rep *Report) error {
	s, err := cutstate.New(h, p.Clone())
	if err != nil {
		return fmt.Errorf("verify: cutstate rejected a complete partition: %w", err)
	}
	if s.Cut() != rep.CutSize {
		return fmt.Errorf("verify: cutstate initial cut %d != recomputed %d", s.Cut(), rep.CutSize)
	}
	lw, rw := s.Weights()
	if lw != rep.LeftWeight || rw != rep.RightWeight {
		return fmt.Errorf("verify: cutstate weights %d|%d != recomputed %d|%d", lw, rw, rep.LeftWeight, rep.RightWeight)
	}
	for v := 0; v < h.NumVertices(); v++ {
		want := s.Gain(v)
		if got := s.Move(v); got != want {
			return fmt.Errorf("verify: cutstate vertex %d realized gain %d != predicted %d", v, got, want)
		}
	}
	// Every vertex flipped: the cut is invariant and the weights swap.
	if s.Cut() != rep.CutSize {
		return fmt.Errorf("verify: cutstate cut %d after full flip, want %d", s.Cut(), rep.CutSize)
	}
	lw, rw = s.Weights()
	if lw != rep.RightWeight || rw != rep.LeftWeight {
		return fmt.Errorf("verify: cutstate weights %d|%d after full flip, want %d|%d", lw, rw, rep.RightWeight, rep.LeftWeight)
	}
	if err := s.Verify(); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	return nil
}

// KWayReport holds the independently recomputed facts about a verified
// K-way partition.
type KWayReport struct {
	// CutNets is the number of nets spanning more than one part.
	CutNets int
	// Connectivity is Σ over nets of (λ(e) − 1).
	Connectivity int64
	// PartWeights is the total vertex weight per part.
	PartWeights []int64
	// PartSizes is the vertex count per part.
	PartSizes []int
}

// CheckKWay validates a K-way labeling: part covers h's vertex set,
// every id lies in [0, k), every part is nonempty, and the K-way
// metrics (cut nets, connectivity Σ(λ−1)) recomputed from scratch are
// internally consistent. For k = 2 the labeling is also converted to a
// Bipartition and run through Check, tying the K-way and two-way
// oracles together.
func CheckKWay(h *hypergraph.Hypergraph, part []int, k int) (*KWayReport, error) {
	if k < 2 {
		return nil, fmt.Errorf("verify: kway needs k >= 2, got %d", k)
	}
	if len(part) != h.NumVertices() {
		return nil, fmt.Errorf("verify: kway labeling covers %d vertices, hypergraph has %d", len(part), h.NumVertices())
	}
	rep := &KWayReport{
		PartWeights: make([]int64, k),
		PartSizes:   make([]int, k),
	}
	for v, id := range part {
		if id < 0 || id >= k {
			return nil, fmt.Errorf("verify: kway vertex %d labeled %d, want [0,%d)", v, id, k)
		}
		rep.PartSizes[id]++
		rep.PartWeights[id] += h.VertexWeight(v)
	}
	for id, sz := range rep.PartSizes {
		if sz == 0 {
			return nil, fmt.Errorf("verify: kway part %d empty", id)
		}
	}
	seen := make([]bool, k)
	for e := 0; e < h.NumEdges(); e++ {
		lambda := 0
		for _, v := range h.EdgePins(e) {
			if !seen[part[v]] {
				seen[part[v]] = true
				lambda++
			}
		}
		for _, v := range h.EdgePins(e) {
			seen[part[v]] = false
		}
		if lambda > 1 {
			rep.CutNets++
		}
		rep.Connectivity += int64(lambda - 1)
	}
	if k == 2 {
		p := partition.New(h.NumVertices())
		for v, id := range part {
			if id == 0 {
				p.Assign(v, partition.Left)
			} else {
				p.Assign(v, partition.Right)
			}
		}
		two, err := Check(h, p)
		if err != nil {
			return nil, fmt.Errorf("verify: kway k=2 cross-check: %w", err)
		}
		if two.CutSize != rep.CutNets {
			return nil, fmt.Errorf("verify: kway k=2 cut %d != bipartition cut %d", rep.CutNets, two.CutSize)
		}
		if rep.Connectivity != int64(rep.CutNets) {
			return nil, fmt.Errorf("verify: kway k=2 connectivity %d != cut nets %d", rep.Connectivity, rep.CutNets)
		}
	}
	return rep, nil
}
