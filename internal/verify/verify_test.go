package verify

import (
	"strings"
	"testing"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

func mkHG(t *testing.T, n int, edges [][]int) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func mkPart(sides ...partition.Side) *partition.Bipartition {
	p := partition.New(len(sides))
	for v, s := range sides {
		p.Assign(v, s)
	}
	return p
}

const L, R = partition.Left, partition.Right

func TestCheckAcceptsAndRecomputes(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 1, 2, 3}})
	rep, err := Check(h, mkPart(L, L, R, R))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CutSize != 2 || rep.WeightedCut != 2 {
		t.Errorf("cut = %d (weighted %d), want 2", rep.CutSize, rep.WeightedCut)
	}
	if rep.Left != 2 || rep.Right != 2 || rep.Imbalance() != 0 || rep.CountImbalance() != 0 {
		t.Errorf("sides %d|%d imbalance %d", rep.Left, rep.Right, rep.Imbalance())
	}
}

func TestCheckRejectsBadPartitions(t *testing.T) {
	h := mkHG(t, 3, [][]int{{0, 1}, {1, 2}})
	cases := []struct {
		name string
		p    *partition.Bipartition
		want string
	}{
		{"nil", nil, "nil partition"},
		{"wrong-length", partition.New(2), "covers 2 vertices"},
		{"unassigned", mkPart(L, partition.Unassigned, R), "unassigned"},
		{"empty-side", mkPart(L, L, L), "side empty"},
	}
	for _, tc := range cases {
		if _, err := Check(h, tc.p); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckCutAndBounds(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}})
	p := mkPart(L, L, R, R)
	if _, err := CheckCut(h, p, 1); err != nil {
		t.Errorf("correct claim rejected: %v", err)
	}
	if _, err := CheckCut(h, p, 2); err == nil {
		t.Error("wrong claimed cutsize accepted")
	}
	if _, err := CheckBalance(h, p, 0); err != nil {
		t.Errorf("balanced partition rejected: %v", err)
	}
	if _, err := CheckBalance(h, mkPart(L, R, R, R), 1); err == nil {
		t.Error("3|1 split accepted at r=1")
	}
	hw := func() *hypergraph.Hypergraph {
		b := hypergraph.NewBuilder(4)
		b.AddEdge(0, 1)
		b.AddEdge(2, 3)
		b.SetVertexWeight(0, 10)
		return b.MustBuild()
	}()
	if _, err := CheckTolerance(hw, mkPart(L, L, R, R), 9); err != nil {
		t.Errorf("imbalance 9 rejected at tol 9: %v", err)
	}
	if _, err := CheckTolerance(hw, mkPart(L, L, R, R), 8); err == nil {
		t.Error("imbalance 9 accepted at tol 8")
	}
}

func TestCheckKWay(t *testing.T) {
	h := mkHG(t, 6, [][]int{{0, 1}, {2, 3}, {4, 5}, {0, 2, 4}, {1, 3, 5}})
	rep, err := CheckKWay(h, []int{0, 0, 1, 1, 2, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Nets {0,2,4} and {1,3,5} each touch all 3 parts: λ−1 = 2 each.
	if rep.CutNets != 2 || rep.Connectivity != 4 {
		t.Errorf("cutNets=%d connectivity=%d, want 2 and 4", rep.CutNets, rep.Connectivity)
	}
	if rep.PartSizes[0] != 2 || rep.PartWeights[2] != 2 {
		t.Errorf("part accounting wrong: %v %v", rep.PartSizes, rep.PartWeights)
	}

	if _, err := CheckKWay(h, []int{0, 0, 1, 1, 2, 3}, 3); err == nil {
		t.Error("out-of-range label accepted")
	}
	if _, err := CheckKWay(h, []int{0, 0, 1, 1, 1, 1}, 3); err == nil {
		t.Error("empty part accepted")
	}
	if _, err := CheckKWay(h, []int{0, 0, 1}, 3); err == nil {
		t.Error("short labeling accepted")
	}

	// k = 2 ties into the bipartition oracle: cut nets == cutsize.
	rep2, err := CheckKWay(h, []int{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := mkPart(L, L, L, R, R, R)
	two, err := Check(h, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CutNets != two.CutSize {
		t.Errorf("k=2 cut %d != bipartition cut %d", rep2.CutNets, two.CutSize)
	}
}

// TestOracleExhaustive runs Check over every bipartition of every
// 2- and 3-uniform hypergraph on four vertices — the full cross-product
// of the metric layer, the cutstate walk and the recomputation.
func TestOracleExhaustive(t *testing.T) {
	insts := append(ExhaustiveUniform(4, 2), ExhaustiveUniform(4, 3)...)
	for _, inst := range insts {
		n := inst.H.NumVertices()
		for mask := 1; mask < (1<<n)-1; mask++ {
			p := partition.New(n)
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					p.Assign(v, partition.Left)
				} else {
					p.Assign(v, partition.Right)
				}
			}
			rep, err := Check(inst.H, p)
			if err != nil {
				t.Fatalf("%s mask %d: %v", inst.Name, mask, err)
			}
			if rep.Left+rep.Right != n {
				t.Fatalf("%s mask %d: side counts %d|%d", inst.Name, mask, rep.Left, rep.Right)
			}
		}
	}
}

func TestSmallInstancesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, inst := range SmallInstances() {
		if seen[inst.Name] {
			t.Errorf("duplicate instance name %q", inst.Name)
		}
		seen[inst.Name] = true
		if n := inst.H.NumVertices(); n < 2 || n > 12 {
			t.Errorf("%s: %d vertices outside [2,12]", inst.Name, n)
		}
		if inst.H.NumEdges() == 0 {
			t.Errorf("%s: no edges", inst.Name)
		}
	}
	if len(seen) < 20 {
		t.Errorf("only %d small instances", len(seen))
	}
}

// TestPlantedInstancesAreOptimal re-proves the pinned planted seeds:
// the planted cutsize is both the exact minimum bisection and the
// exact unconstrained minimum cut, so the differential suite may
// assert Algorithm I recovers it exactly.
func TestPlantedInstancesAreOptimal(t *testing.T) {
	insts := PlantedInstances()
	if len(insts) < 5 {
		t.Fatalf("only %d planted instances", len(insts))
	}
	for _, inst := range insts {
		_, bis, err := bruteforce.MinBisection(inst.H)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if bis != inst.Cut {
			t.Errorf("%s: min bisection %d, planted %d", inst.Name, bis, inst.Cut)
		}
		_, unc, err := bruteforce.MinCutUnconstrained(inst.H)
		if err != nil {
			t.Fatalf("%s: %v", inst.Name, err)
		}
		if unc != inst.Cut {
			t.Errorf("%s: unconstrained min cut %d, planted %d", inst.Name, unc, inst.Cut)
		}
	}
}

func TestCheckEpsilon(t *testing.T) {
	// Weighted 4-vertex instance: total 10, ceil 5.
	b := hypergraph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	b.SetVertexWeight(0, 4)
	b.SetVertexWeight(1, 3)
	b.SetVertexWeight(2, 2)
	b.SetVertexWeight(3, 1)
	h := b.MustBuild()

	// 7|3 split: admissible at eps 0.4 (max 7), rejected at 0.2 (max 6).
	p := mkPart(L, L, R, R)
	if _, err := CheckEpsilon(h, p, 0.4); err != nil {
		t.Errorf("CheckEpsilon(0.4) rejected a 7|3 split: %v", err)
	}
	if _, err := CheckEpsilon(h, p, 0.2); err == nil {
		t.Error("CheckEpsilon(0.2) accepted a 7|3 split (max side 6)")
	}
	if _, err := CheckEpsilon(h, p, -1); err == nil {
		t.Error("CheckEpsilon accepted a negative epsilon")
	}
	// 6|4 split passes at 0.2.
	if _, err := CheckEpsilon(h, mkPart(L, R, L, R), 0.2); err != nil {
		t.Errorf("CheckEpsilon(0.2) rejected a 6|4 split: %v", err)
	}
}

func TestCheckFixed(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}})
	p := mkPart(L, L, R, R)
	if _, err := CheckFixed(h, p, []int8{0, -1, -1, 1}); err != nil {
		t.Errorf("CheckFixed rejected a respected assignment: %v", err)
	}
	if _, err := CheckFixed(h, p, []int8{1, -1, -1, -1}); err == nil {
		t.Error("CheckFixed accepted a violated pin (vertex 0 fixed Right, sits Left)")
	}
	// Short slice: only the covered prefix is checked.
	if _, err := CheckFixed(h, p, []int8{0}); err != nil {
		t.Errorf("CheckFixed with short slice: %v", err)
	}
	if _, err := CheckFixed(h, p, nil); err != nil {
		t.Errorf("CheckFixed with nil slice: %v", err)
	}
}

func TestCheckConstraint(t *testing.T) {
	h := mkHG(t, 4, [][]int{{0, 1}, {1, 2}, {2, 3}})
	p := mkPart(L, L, R, R)
	if _, err := CheckConstraint(h, p, partition.Constraint{}); err != nil {
		t.Errorf("zero constraint: %v", err)
	}
	ok := partition.Constraint{Epsilon: 0.1, FixedSide: []int8{0, -1, -1, 1}}
	if _, err := CheckConstraint(h, p, ok); err != nil {
		t.Errorf("satisfied constraint rejected: %v", err)
	}
	bad := partition.Constraint{Epsilon: 0.1, FixedSide: []int8{1, -1, -1, -1}}
	if _, err := CheckConstraint(h, p, bad); err == nil {
		t.Error("violated fixed pin accepted")
	}
	if _, err := CheckConstraint(h, p, partition.Constraint{FixedSide: []int8{3}}); err == nil {
		t.Error("out-of-range part id accepted")
	}
}

func TestCheckBalanceZeroWeightVertices(t *testing.T) {
	// Zero-weight vertices count toward the FM r-bound (it is a COUNT
	// bound) even though they carry no weight.
	b := hypergraph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	for v := 1; v < 5; v++ {
		b.SetVertexWeight(v, 0)
	}
	h := b.MustBuild()
	p := mkPart(L, R, R, R, R)
	rep, err := CheckBalance(h, p, 3)
	if err != nil {
		t.Fatalf("CheckBalance(r=3) on a 1|4 count split: %v", err)
	}
	if rep.LeftWeight != 1 || rep.RightWeight != 0 {
		t.Errorf("weights %d|%d, want 1|0", rep.LeftWeight, rep.RightWeight)
	}
	if _, err := CheckBalance(h, p, 2); err == nil {
		t.Error("CheckBalance(r=2) accepted count imbalance 3")
	}
	// All weights zero: the weight-based tolerance check still passes at 0.
	if _, err := CheckTolerance(h, mkPart(L, R, L, R, L), 0); err != nil {
		// Left weight 1 vs right 0 — tolerance 0 must reject.
		_ = err
	} else {
		t.Error("CheckTolerance(0) accepted imbalance 1")
	}
}

func TestCheckBalanceSingleVertex(t *testing.T) {
	// A single-vertex hypergraph has no bipartition at all: one side is
	// always empty, so every balance check must fail with the side-empty
	// diagnosis rather than a panic or a false pass.
	b := hypergraph.NewBuilder(1)
	h := b.MustBuild()
	p := partition.New(1)
	p.Assign(0, partition.Left)
	if _, err := CheckBalance(h, p, 1); err == nil {
		t.Fatal("CheckBalance accepted a single-vertex 'bipartition'")
	} else if !strings.Contains(err.Error(), "side empty") {
		t.Fatalf("unexpected failure mode: %v", err)
	}
	if _, err := CheckEpsilon(h, p, 1); err == nil {
		t.Fatal("CheckEpsilon accepted a single-vertex 'bipartition'")
	}
}
