// Package place implements min-cut placement in the style of Breuer
// (reference [4] of the paper): the netlist hypergraph is recursively
// bipartitioned onto a grid of slots, and quality is measured with the
// bounding-box (half-perimeter) net model the paper's introduction
// names as the standard objective. Terminal propagation
// (Dunlop–Kernighan, reference [8]) is available as an option: nets
// with pins outside the region being split contribute a fixed anchor on
// the side nearer those external pins.
//
// Each recursive cut runs Algorithm I (package core) for the initial
// split and refines it with Fiduccia–Mattheyses — the composition the
// paper's speed argument enables: a provably-good O(n²) initial cut
// makes the refinement cheap.
package place

import (
	"fmt"
	"math/rand"

	"fasthgp/internal/core"
	"fasthgp/internal/fm"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/partition"
)

// Placement assigns each module a slot on a Rows×Cols grid. Multiple
// modules may share a slot (slots are bins, not sites).
type Placement struct {
	// Rows and Cols are the grid dimensions.
	Rows, Cols int
	// X and Y are the slot coordinates of each module
	// (0 ≤ X < Cols, 0 ≤ Y < Rows).
	X, Y []int
}

// Options configures MinCutPlace.
type Options struct {
	// Rows and Cols set the slot grid (defaults 4×4). Powers of two
	// give the evenest recursive splits.
	Rows, Cols int
	// TerminalPropagation enables Dunlop–Kernighan anchors.
	TerminalPropagation bool
	// Starts is the Algorithm I multi-start count per cut (default 5).
	Starts int
	// Seed makes the placement deterministic.
	Seed int64
}

func (o *Options) defaults() {
	if o.Rows <= 0 {
		o.Rows = 4
	}
	if o.Cols <= 0 {
		o.Cols = 4
	}
	if o.Starts <= 0 {
		o.Starts = 5
	}
}

// MinCutPlace places h by recursive min-cut bipartitioning.
func MinCutPlace(h *hypergraph.Hypergraph, opts Options) (*Placement, error) {
	opts.defaults()
	n := h.NumVertices()
	if n == 0 {
		return &Placement{Rows: opts.Rows, Cols: opts.Cols}, nil
	}
	pl := &Placement{
		Rows: opts.Rows,
		Cols: opts.Cols,
		X:    make([]int, n),
		Y:    make([]int, n),
	}
	p := &placer{
		h:    h,
		pl:   pl,
		opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		cx:   make([]float64, n),
		cy:   make([]float64, n),
	}
	all := make([]int, n)
	for v := range all {
		all[v] = v
		p.cx[v] = float64(opts.Cols) / 2
		p.cy[v] = float64(opts.Rows) / 2
	}
	p.recurse(all, 0, opts.Cols, 0, opts.Rows)
	return pl, nil
}

type placer struct {
	h    *hypergraph.Hypergraph
	pl   *Placement
	opts Options
	rng  *rand.Rand
	// cx, cy track the current region center of every module, for
	// terminal propagation.
	cx, cy []float64
}

// recurse places modules into the slot box [x0,x1)×[y0,y1).
func (p *placer) recurse(modules []int, x0, x1, y0, y1 int) {
	if len(modules) == 0 {
		return
	}
	if x1-x0 <= 1 && y1-y0 <= 1 {
		for _, m := range modules {
			p.pl.X[m] = x0
			p.pl.Y[m] = y0
		}
		return
	}
	vertical := x1-x0 >= y1-y0 // split the wider dimension
	left, right := p.split(modules, vertical, x0, x1, y0, y1)
	if vertical {
		xm := (x0 + x1) / 2
		p.setCenters(left, x0, xm, y0, y1)
		p.setCenters(right, xm, x1, y0, y1)
		p.recurse(left, x0, xm, y0, y1)
		p.recurse(right, xm, x1, y0, y1)
	} else {
		ym := (y0 + y1) / 2
		p.setCenters(left, x0, x1, y0, ym)
		p.setCenters(right, x0, x1, ym, y1)
		p.recurse(left, x0, x1, y0, ym)
		p.recurse(right, x0, x1, ym, y1)
	}
}

func (p *placer) setCenters(modules []int, x0, x1, y0, y1 int) {
	for _, m := range modules {
		p.cx[m] = (float64(x0) + float64(x1)) / 2
		p.cy[m] = (float64(y0) + float64(y1)) / 2
	}
}

// split bipartitions the module set of a region, returning the module
// lists destined for the low (left/top) and high halves.
func (p *placer) split(modules []int, vertical bool, x0, x1, y0, y1 int) (lo, hi []int) {
	if len(modules) == 1 {
		return modules, nil
	}
	sub, anchors := p.buildSubproblem(modules, vertical, x0, x1, y0, y1)

	var sides *partition.Bipartition
	res, err := core.Bipartition(sub, core.Options{
		Starts:     p.opts.Starts,
		Seed:       p.rng.Int63(),
		Completion: core.CompletionWeighted,
	})
	if err == nil {
		sides = res.Partition
	} else {
		// Tiny degenerate region: alternate assignment.
		sides = partition.New(sub.NumVertices())
		for i := 0; i < sub.NumVertices(); i++ {
			if i%2 == 0 {
				sides.Assign(i, partition.Left)
			} else {
				sides.Assign(i, partition.Right)
			}
		}
	}
	// Pin anchors to their sides, then refine with FM.
	fixed := make([]bool, sub.NumVertices())
	for av, side := range anchors {
		fixed[av] = true
		sides.Assign(av, side)
	}
	if sub.NumVertices() >= 2 {
		if l, r, _ := sides.Counts(); l > 0 && r > 0 {
			if _, err := fm.ImproveLocked(sub, sides, fixed, fm.Options{BalanceFraction: 0.1}); err != nil {
				// Refinement is best-effort; the initial split stands.
				_ = err
			}
		}
	}
	for i, m := range modules {
		if sides.Side(i) == partition.Left {
			lo = append(lo, m)
		} else {
			hi = append(hi, m)
		}
	}
	// Guarantee progress: never return an empty half for a splittable
	// region.
	if len(lo) == 0 {
		lo = append(lo, hi[len(hi)-1])
		hi = hi[:len(hi)-1]
	} else if len(hi) == 0 {
		hi = append(hi, lo[len(lo)-1])
		lo = lo[:len(lo)-1]
	}
	return lo, hi
}

// buildSubproblem induces the region hypergraph: sub-vertex i is
// modules[i]; with terminal propagation, nets that also have pins
// outside the region receive an extra zero-weight anchor vertex on the
// side (returned in anchors) nearer the external pins' centroid.
func (p *placer) buildSubproblem(modules []int, vertical bool, x0, x1, y0, y1 int) (*hypergraph.Hypergraph, map[int]partition.Side) {
	h := p.h
	inRegion := make(map[int]int, len(modules)) // module → sub-vertex
	for i, m := range modules {
		inRegion[m] = i
	}
	type netInfo struct {
		pins     []int
		external []int
	}
	seen := map[int]*netInfo{}
	var order []int
	for _, m := range modules {
		for _, e := range h.VertexEdges(m) {
			if _, ok := seen[e]; !ok {
				ni := &netInfo{}
				for _, v := range h.EdgePins(e) {
					if sv, ok := inRegion[v]; ok {
						ni.pins = append(ni.pins, sv)
					} else {
						ni.external = append(ni.external, v)
					}
				}
				seen[e] = ni
				order = append(order, e)
			}
		}
	}

	anchors := map[int]partition.Side{}
	numAnchors := 0
	if p.opts.TerminalPropagation {
		for _, e := range order {
			ni := seen[e]
			if len(ni.pins) >= 1 && len(ni.external) > 0 {
				numAnchors++
			}
		}
	}
	b := hypergraph.NewBuilder(len(modules) + numAnchors)
	for i, m := range modules {
		b.SetVertexWeight(i, h.VertexWeight(m))
	}
	nextAnchor := len(modules)
	var mid float64
	if vertical {
		mid = (float64(x0) + float64(x1)) / 2
	} else {
		mid = (float64(y0) + float64(y1)) / 2
	}
	for _, e := range order {
		ni := seen[e]
		pins := ni.pins
		if p.opts.TerminalPropagation && len(pins) >= 1 && len(ni.external) > 0 {
			// Anchor on the side of the external centroid.
			var c float64
			for _, v := range ni.external {
				if vertical {
					c += p.cx[v]
				} else {
					c += p.cy[v]
				}
			}
			c /= float64(len(ni.external))
			av := nextAnchor
			nextAnchor++
			b.SetVertexWeight(av, 0)
			if c < mid {
				anchors[av] = partition.Left
			} else {
				anchors[av] = partition.Right
			}
			pins = append(append([]int(nil), pins...), av)
		}
		if len(pins) >= 2 {
			ne := b.AddEdge(pins...)
			b.SetEdgeWeight(ne, h.EdgeWeight(e))
		}
	}
	sub, err := b.Build()
	if err != nil {
		panic("place: subproblem build: " + err.Error())
	}
	return sub, anchors
}

// RandomPlace scatters modules uniformly over the grid.
func RandomPlace(h *hypergraph.Hypergraph, rows, cols int, rng *rand.Rand) (*Placement, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("place: grid %dx%d invalid", rows, cols)
	}
	n := h.NumVertices()
	pl := &Placement{Rows: rows, Cols: cols, X: make([]int, n), Y: make([]int, n)}
	for v := 0; v < n; v++ {
		pl.X[v] = rng.Intn(cols)
		pl.Y[v] = rng.Intn(rows)
	}
	return pl, nil
}

// HPWL returns the total half-perimeter wirelength of the placement
// under the bounding-box net model, weighted by net weights.
func HPWL(h *hypergraph.Hypergraph, pl *Placement) int64 {
	var total int64
	for e := 0; e < h.NumEdges(); e++ {
		pins := h.EdgePins(e)
		if len(pins) < 2 {
			continue
		}
		minX, maxX := pl.X[pins[0]], pl.X[pins[0]]
		minY, maxY := pl.Y[pins[0]], pl.Y[pins[0]]
		for _, v := range pins[1:] {
			if pl.X[v] < minX {
				minX = pl.X[v]
			}
			if pl.X[v] > maxX {
				maxX = pl.X[v]
			}
			if pl.Y[v] < minY {
				minY = pl.Y[v]
			}
			if pl.Y[v] > maxY {
				maxY = pl.Y[v]
			}
		}
		total += h.EdgeWeight(e) * int64((maxX-minX)+(maxY-minY))
	}
	return total
}

// Validate checks that every module has in-range coordinates.
func (pl *Placement) Validate() error {
	if len(pl.X) != len(pl.Y) {
		return fmt.Errorf("place: X/Y length mismatch")
	}
	for v := range pl.X {
		if pl.X[v] < 0 || pl.X[v] >= pl.Cols || pl.Y[v] < 0 || pl.Y[v] >= pl.Rows {
			return fmt.Errorf("place: module %d at (%d,%d) outside %dx%d grid", v, pl.X[v], pl.Y[v], pl.Cols, pl.Rows)
		}
	}
	return nil
}
