package place

import (
	"math/rand"
	"testing"

	"fasthgp/internal/gen"
	"fasthgp/internal/hypergraph"
)

func testNetlist(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	h, err := gen.Profile(gen.ProfileConfig{Modules: 96, Signals: 200, Technology: gen.StdCell}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMinCutPlaceValid(t *testing.T) {
	h := testNetlist(t)
	pl, err := MinCutPlace(h, Options{Rows: 4, Cols: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pl.X) != h.NumVertices() {
		t.Errorf("placed %d modules, want %d", len(pl.X), h.NumVertices())
	}
	// All 16 slots should be populated for 96 modules.
	used := map[[2]int]bool{}
	for v := range pl.X {
		used[[2]int{pl.X[v], pl.Y[v]}] = true
	}
	if len(used) < 12 {
		t.Errorf("only %d/16 slots used", len(used))
	}
}

func TestMinCutBeatsRandom(t *testing.T) {
	h := testNetlist(t)
	pl, err := MinCutPlace(h, Options{Rows: 4, Cols: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mc := HPWL(h, pl)
	rng := rand.New(rand.NewSource(3))
	var rsum int64
	const trials = 5
	for i := 0; i < trials; i++ {
		rp, err := RandomPlace(h, 4, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		rsum += HPWL(h, rp)
	}
	ravg := rsum / trials
	if mc >= ravg {
		t.Errorf("min-cut HPWL %d not better than random average %d", mc, ravg)
	}
}

func TestTerminalPropagationHelpsOrTies(t *testing.T) {
	h := testNetlist(t)
	plain, err := MinCutPlace(h, Options{Rows: 4, Cols: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := MinCutPlace(h, Options{Rows: 4, Cols: 4, Seed: 4, TerminalPropagation: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	// TP is a heuristic; assert it is in the same quality band (within
	// 25%) rather than strictly better on one seed.
	a, b := HPWL(h, plain), HPWL(h, tp)
	if b > a+a/4 {
		t.Errorf("terminal propagation HPWL %d far worse than plain %d", b, a)
	}
}

func TestSingleSlotGrid(t *testing.T) {
	h := testNetlist(t)
	pl, err := MinCutPlace(h, Options{Rows: 1, Cols: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := range pl.X {
		if pl.X[v] != 0 || pl.Y[v] != 0 {
			t.Fatal("1x1 grid must place everything at the origin")
		}
	}
	if HPWL(h, pl) != 0 {
		t.Error("HPWL on a single slot must be 0")
	}
}

func TestRowGrid(t *testing.T) {
	h := testNetlist(t)
	pl, err := MinCutPlace(h, Options{Rows: 1, Cols: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := range pl.Y {
		if pl.Y[v] != 0 {
			t.Fatal("row grid must keep Y = 0")
		}
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h, err := hypergraph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := MinCutPlace(h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.X) != 0 {
		t.Error("empty placement should have no coordinates")
	}
}

func TestTinyInstances(t *testing.T) {
	for n := 1; n <= 3; n++ {
		b := hypergraph.NewBuilder(n)
		if n >= 2 {
			b.AddEdge(0, 1)
		} else {
			b.AddEdge(0)
		}
		h := b.MustBuild()
		pl, err := MinCutPlace(h, Options{Rows: 2, Cols: 2, Seed: int64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestRandomPlaceErrors(t *testing.T) {
	h, err := hypergraph.FromEdges(2, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RandomPlace(h, 0, 4, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted 0 rows")
	}
}

func TestHPWLKnown(t *testing.T) {
	b := hypergraph.NewBuilder(3)
	b.AddEdge(0, 1, 2)
	e2 := b.AddEdge(0, 2)
	b.SetEdgeWeight(e2, 3)
	h := b.MustBuild()
	pl := &Placement{Rows: 3, Cols: 3, X: []int{0, 2, 1}, Y: []int{0, 1, 2}}
	// Net 0: bbox x[0,2], y[0,2] → 4. Net 1: x[0,1], y[0,2] → 3·3 = 9.
	if got := HPWL(h, pl); got != 13 {
		t.Errorf("HPWL = %d, want 13", got)
	}
}

func TestPlacementValidate(t *testing.T) {
	pl := &Placement{Rows: 2, Cols: 2, X: []int{5}, Y: []int{0}}
	if err := pl.Validate(); err == nil {
		t.Error("accepted out-of-grid coordinate")
	}
	bad := &Placement{Rows: 2, Cols: 2, X: []int{0, 1}, Y: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("accepted X/Y length mismatch")
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	h := testNetlist(t)
	a, err := MinCutPlace(h, Options{Rows: 4, Cols: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCutPlace(h, Options{Rows: 4, Cols: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] || a.Y[v] != b.Y[v] {
			t.Fatal("same seed produced different placements")
		}
	}
}
