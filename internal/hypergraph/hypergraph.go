// Package hypergraph provides the core hypergraph data structure used
// throughout the library.
//
// In the VLSI/PCB CAD setting of Kahng's "Fast Hypergraph Partition"
// (DAC 1989), a circuit netlist defines a hypergraph H: vertices are
// modules (cells, chips) and hyperedges are signal nets, each net being
// the subset of modules it connects. The Hypergraph type stores pins in
// compressed sparse row (CSR) form in both directions — edge→pins and
// vertex→incident edges — so that all traversals used by the
// partitioning algorithms are cache-friendly and allocation-free.
//
// A Hypergraph is immutable after construction; build one with a
// Builder. Vertices and edges are identified by dense indices
// 0..NumVertices-1 and 0..NumEdges-1. Optional names may be attached
// for I/O and worked examples.
package hypergraph

import (
	"errors"
	"fmt"
	"sort"
)

// Hypergraph is an immutable weighted hypergraph.
//
// The zero value is an empty hypergraph with no vertices and no edges;
// use a Builder to construct anything useful.
type Hypergraph struct {
	numVertices int

	// Edge → pins, CSR. pins[edgeStart[e]:edgeStart[e+1]] are the
	// vertices of edge e, sorted ascending.
	edgeStart []int
	pins      []int

	// Vertex → incident edges, CSR. incident[vertStart[v]:vertStart[v+1]]
	// are the edges containing vertex v, sorted ascending.
	vertStart []int
	incident  []int

	vertexWeight []int64
	edgeWeight   []int64

	totalVertexWeight int64

	// Optional names; nil when not set.
	vertexNames []string
	edgeNames   []string
}

// NumVertices returns the number of vertices (modules).
func (h *Hypergraph) NumVertices() int { return h.numVertices }

// NumEdges returns the number of hyperedges (nets).
func (h *Hypergraph) NumEdges() int {
	if h.edgeStart == nil {
		return 0
	}
	return len(h.edgeStart) - 1
}

// NumPins returns the total number of pins, i.e. the sum of edge sizes.
func (h *Hypergraph) NumPins() int { return len(h.pins) }

// EdgePins returns the vertices of edge e, sorted ascending.
// The returned slice aliases internal storage and must not be modified.
func (h *Hypergraph) EdgePins(e int) []int {
	return h.pins[h.edgeStart[e]:h.edgeStart[e+1]]
}

// EdgeSize returns the number of pins of edge e.
func (h *Hypergraph) EdgeSize(e int) int {
	return h.edgeStart[e+1] - h.edgeStart[e]
}

// VertexEdges returns the edges incident to vertex v, sorted ascending.
// The returned slice aliases internal storage and must not be modified.
func (h *Hypergraph) VertexEdges(v int) []int {
	return h.incident[h.vertStart[v]:h.vertStart[v+1]]
}

// VertexDegree returns the number of edges incident to vertex v.
func (h *Hypergraph) VertexDegree(v int) int {
	return h.vertStart[v+1] - h.vertStart[v]
}

// VertexWeight returns the weight of vertex v. Weights default to 1.
func (h *Hypergraph) VertexWeight(v int) int64 { return h.vertexWeight[v] }

// EdgeWeight returns the weight of edge e. Weights default to 1.
func (h *Hypergraph) EdgeWeight(e int) int64 { return h.edgeWeight[e] }

// TotalVertexWeight returns the sum of all vertex weights.
func (h *Hypergraph) TotalVertexWeight() int64 { return h.totalVertexWeight }

// VertexName returns the name of vertex v, or a synthesized "v<i>" name
// when no names were attached.
func (h *Hypergraph) VertexName(v int) string {
	if h.vertexNames != nil && h.vertexNames[v] != "" {
		return h.vertexNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// EdgeName returns the name of edge e, or a synthesized "e<i>" name
// when no names were attached.
func (h *Hypergraph) EdgeName(e int) string {
	if h.edgeNames != nil && h.edgeNames[e] != "" {
		return h.edgeNames[e]
	}
	return fmt.Sprintf("e%d", e)
}

// HasNames reports whether explicit vertex or edge names were attached.
func (h *Hypergraph) HasNames() bool {
	return h.vertexNames != nil || h.edgeNames != nil
}

// MaxEdgeSize returns the largest edge size, or 0 for an edgeless
// hypergraph.
func (h *Hypergraph) MaxEdgeSize() int {
	m := 0
	for e := 0; e < h.NumEdges(); e++ {
		if s := h.EdgeSize(e); s > m {
			m = s
		}
	}
	return m
}

// MaxVertexDegree returns the largest vertex degree, or 0 when there
// are no vertices.
func (h *Hypergraph) MaxVertexDegree() int {
	m := 0
	for v := 0; v < h.numVertices; v++ {
		if d := h.VertexDegree(v); d > m {
			m = d
		}
	}
	return m
}

// AverageEdgeSize returns the mean edge size, or 0 for an edgeless
// hypergraph.
func (h *Hypergraph) AverageEdgeSize() float64 {
	if h.NumEdges() == 0 {
		return 0
	}
	return float64(h.NumPins()) / float64(h.NumEdges())
}

// IsGraph reports whether every edge has exactly two pins, i.e. the
// hypergraph is an ordinary graph.
func (h *Hypergraph) IsGraph() bool {
	for e := 0; e < h.NumEdges(); e++ {
		if h.EdgeSize(e) != 2 {
			return false
		}
	}
	return true
}

// EdgeContains reports whether edge e contains vertex v, by binary
// search over the sorted pin list.
func (h *Hypergraph) EdgeContains(e, v int) bool {
	p := h.EdgePins(e)
	i := sort.SearchInts(p, v)
	return i < len(p) && p[i] == v
}

// Components returns the connected components of the hypergraph as a
// vertex labeling comp (comp[v] in 0..k-1) and the component count k.
// Two vertices are connected when some chain of edges joins them.
// Isolated vertices each form their own component.
func (h *Hypergraph) Components() (comp []int, k int) {
	parent := make([]int, h.numVertices)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		p := h.EdgePins(e)
		for i := 1; i < len(p); i++ {
			union(p[0], p[i])
		}
	}
	comp = make([]int, h.numVertices)
	label := make(map[int]int)
	for v := 0; v < h.numVertices; v++ {
		r := find(v)
		id, ok := label[r]
		if !ok {
			id = len(label)
			label[r] = id
		}
		comp[v] = id
	}
	return comp, len(label)
}

// FilterEdges returns a new hypergraph containing only the edges for
// which keep returns true, over the same vertex set, together with a
// mapping from new edge indices to original edge indices. Vertex and
// edge weights and names are preserved.
func (h *Hypergraph) FilterEdges(keep func(e int) bool) (*Hypergraph, []int) {
	b := NewBuilder(h.numVertices)
	origOf := make([]int, 0, h.NumEdges())
	for v := 0; v < h.numVertices; v++ {
		b.SetVertexWeight(v, h.vertexWeight[v])
		if h.vertexNames != nil {
			b.SetVertexName(v, h.vertexNames[v])
		}
	}
	for e := 0; e < h.NumEdges(); e++ {
		if !keep(e) {
			continue
		}
		ne := b.AddEdge(h.EdgePins(e)...)
		b.SetEdgeWeight(ne, h.edgeWeight[e])
		if h.edgeNames != nil {
			b.SetEdgeName(ne, h.edgeNames[e])
		}
		origOf = append(origOf, e)
	}
	sub, err := b.Build()
	if err != nil {
		// keep cannot introduce invalid structure; Build on a subset of a
		// valid hypergraph never fails.
		panic("hypergraph: FilterEdges produced invalid hypergraph: " + err.Error())
	}
	return sub, origOf
}

// Builder incrementally assembles a Hypergraph.
//
// Duplicate pins within an edge are merged. Edges may be added in any
// order; Build finalizes into CSR form.
type Builder struct {
	numVertices  int
	edges        [][]int
	vertexWeight []int64
	edgeWeight   []int64
	vertexNames  []string
	edgeNames    []string
	hasVNames    bool
	hasENames    bool
}

// NewBuilder returns a Builder for a hypergraph with n vertices.
func NewBuilder(n int) *Builder {
	b := &Builder{numVertices: n}
	b.vertexWeight = make([]int64, n)
	for i := range b.vertexWeight {
		b.vertexWeight[i] = 1
	}
	b.vertexNames = make([]string, n)
	return b
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.numVertices }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge adds a hyperedge with the given pins and returns its index.
// Pins are copied; duplicates are merged at Build time. Out-of-range
// pins are reported by Build.
func (b *Builder) AddEdge(pins ...int) int {
	cp := make([]int, len(pins))
	copy(cp, pins)
	b.edges = append(b.edges, cp)
	b.edgeWeight = append(b.edgeWeight, 1)
	b.edgeNames = append(b.edgeNames, "")
	return len(b.edges) - 1
}

// SetVertexWeight sets the weight of vertex v (default 1).
func (b *Builder) SetVertexWeight(v int, w int64) { b.vertexWeight[v] = w }

// SetEdgeWeight sets the weight of edge e (default 1).
func (b *Builder) SetEdgeWeight(e int, w int64) { b.edgeWeight[e] = w }

// SetVertexName attaches a name to vertex v.
func (b *Builder) SetVertexName(v int, name string) {
	b.vertexNames[v] = name
	if name != "" {
		b.hasVNames = true
	}
}

// SetEdgeName attaches a name to edge e.
func (b *Builder) SetEdgeName(e int, name string) {
	b.edgeNames[e] = name
	if name != "" {
		b.hasENames = true
	}
}

// errBuild is the sentinel prefix for all Build errors.
var errBuild = errors.New("hypergraph: build")

// Build validates and finalizes the hypergraph.
//
// It returns an error if any pin index is out of range, any edge is
// empty after duplicate merging, or any weight is negative. Weights of
// zero are permitted (a zero-weight vertex is free to place).
func (b *Builder) Build() (*Hypergraph, error) {
	h := &Hypergraph{numVertices: b.numVertices}
	numEdges := len(b.edges)

	h.edgeStart = make([]int, numEdges+1)
	totalPins := 0
	normalized := make([][]int, numEdges)
	for e, pins := range b.edges {
		if len(pins) == 0 {
			return nil, fmt.Errorf("%w: edge %d has no pins", errBuild, e)
		}
		cp := make([]int, len(pins))
		copy(cp, pins)
		sort.Ints(cp)
		// Merge duplicates in place.
		out := cp[:1]
		for _, p := range cp[1:] {
			if p != out[len(out)-1] {
				out = append(out, p)
			}
		}
		for _, p := range out {
			if p < 0 || p >= b.numVertices {
				return nil, fmt.Errorf("%w: edge %d pin %d out of range [0,%d)", errBuild, e, p, b.numVertices)
			}
		}
		normalized[e] = out
		totalPins += len(out)
	}
	h.pins = make([]int, 0, totalPins)
	for e, pins := range normalized {
		h.edgeStart[e] = len(h.pins)
		h.pins = append(h.pins, pins...)
	}
	h.edgeStart[numEdges] = len(h.pins)

	// Vertex → incident edges CSR by counting sort.
	deg := make([]int, b.numVertices+1)
	for _, p := range h.pins {
		deg[p+1]++
	}
	h.vertStart = make([]int, b.numVertices+1)
	for v := 0; v < b.numVertices; v++ {
		h.vertStart[v+1] = h.vertStart[v] + deg[v+1]
	}
	h.incident = make([]int, totalPins)
	cursor := make([]int, b.numVertices)
	copy(cursor, h.vertStart[:b.numVertices])
	for e := 0; e < numEdges; e++ {
		for _, p := range h.pins[h.edgeStart[e]:h.edgeStart[e+1]] {
			h.incident[cursor[p]] = e
			cursor[p]++
		}
	}

	h.vertexWeight = make([]int64, b.numVertices)
	copy(h.vertexWeight, b.vertexWeight)
	for v, w := range h.vertexWeight {
		if w < 0 {
			return nil, fmt.Errorf("%w: vertex %d has negative weight %d", errBuild, v, w)
		}
		h.totalVertexWeight += w
	}
	h.edgeWeight = make([]int64, numEdges)
	copy(h.edgeWeight, b.edgeWeight)
	for e, w := range h.edgeWeight {
		if w < 0 {
			return nil, fmt.Errorf("%w: edge %d has negative weight %d", errBuild, e, w)
		}
	}
	if b.hasVNames {
		h.vertexNames = make([]string, b.numVertices)
		copy(h.vertexNames, b.vertexNames)
	}
	if b.hasENames {
		h.edgeNames = make([]string, numEdges)
		copy(h.edgeNames, b.edgeNames)
	}
	return h, nil
}

// MustBuild is Build that panics on error; intended for tests and
// hand-constructed examples.
func (b *Builder) MustBuild() *Hypergraph {
	h, err := b.Build()
	if err != nil {
		panic(err)
	}
	return h
}

// FromEdges is a convenience constructor building an unweighted
// hypergraph with n vertices from a pin list per edge.
func FromEdges(n int, edges [][]int) (*Hypergraph, error) {
	b := NewBuilder(n)
	for _, pins := range edges {
		b.AddEdge(pins...)
	}
	return b.Build()
}

// String returns a compact human-readable summary.
func (h *Hypergraph) String() string {
	return fmt.Sprintf("Hypergraph{vertices: %d, edges: %d, pins: %d}",
		h.NumVertices(), h.NumEdges(), h.NumPins())
}
