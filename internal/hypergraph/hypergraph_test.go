package hypergraph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyHypergraph(t *testing.T) {
	h, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.NumVertices() != 0 || h.NumEdges() != 0 || h.NumPins() != 0 {
		t.Errorf("empty hypergraph has %d vertices, %d edges, %d pins", h.NumVertices(), h.NumEdges(), h.NumPins())
	}
	if h.TotalVertexWeight() != 0 {
		t.Errorf("TotalVertexWeight = %d, want 0", h.TotalVertexWeight())
	}
	if h.MaxEdgeSize() != 0 || h.MaxVertexDegree() != 0 {
		t.Errorf("max stats on empty hypergraph nonzero")
	}
}

func TestBasicConstruction(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4, 0)
	h, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if h.NumVertices() != 5 {
		t.Errorf("NumVertices = %d, want 5", h.NumVertices())
	}
	if h.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", h.NumEdges())
	}
	if h.NumPins() != 8 {
		t.Errorf("NumPins = %d, want 8", h.NumPins())
	}
	if got := h.EdgePins(0); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("EdgePins(0) = %v", got)
	}
	if got := h.EdgePins(2); !reflect.DeepEqual(got, []int{0, 3, 4}) {
		t.Errorf("EdgePins(2) = %v, want sorted [0 3 4]", got)
	}
	if got := h.VertexEdges(0); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("VertexEdges(0) = %v, want [0 2]", got)
	}
	if got := h.VertexEdges(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("VertexEdges(2) = %v, want [0 1]", got)
	}
	if h.VertexDegree(3) != 2 {
		t.Errorf("VertexDegree(3) = %d, want 2", h.VertexDegree(3))
	}
	if h.EdgeSize(1) != 2 {
		t.Errorf("EdgeSize(1) = %d, want 2", h.EdgeSize(1))
	}
	if h.TotalVertexWeight() != 5 {
		t.Errorf("TotalVertexWeight = %d, want 5 (unit default)", h.TotalVertexWeight())
	}
}

func TestDuplicatePinsMerged(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1, 2, 2, 1)
	h := b.MustBuild()
	if got := h.EdgePins(0); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("EdgePins(0) = %v, want [1 2]", got)
	}
	if h.NumPins() != 2 {
		t.Errorf("NumPins = %d, want 2", h.NumPins())
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("pin out of range", func(t *testing.T) {
		b := NewBuilder(2)
		b.AddEdge(0, 2)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted out-of-range pin")
		}
	})
	t.Run("negative pin", func(t *testing.T) {
		b := NewBuilder(2)
		b.AddEdge(-1, 0)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted negative pin")
		}
	})
	t.Run("empty edge", func(t *testing.T) {
		b := NewBuilder(2)
		b.AddEdge()
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted empty edge")
		}
	})
	t.Run("negative vertex weight", func(t *testing.T) {
		b := NewBuilder(2)
		b.AddEdge(0, 1)
		b.SetVertexWeight(0, -3)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted negative vertex weight")
		}
	})
	t.Run("negative edge weight", func(t *testing.T) {
		b := NewBuilder(2)
		e := b.AddEdge(0, 1)
		b.SetEdgeWeight(e, -1)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted negative edge weight")
		}
	})
}

func TestWeights(t *testing.T) {
	b := NewBuilder(3)
	e0 := b.AddEdge(0, 1)
	e1 := b.AddEdge(1, 2)
	b.SetVertexWeight(0, 10)
	b.SetVertexWeight(2, 0)
	b.SetEdgeWeight(e0, 4)
	h := b.MustBuild()
	if h.VertexWeight(0) != 10 || h.VertexWeight(1) != 1 || h.VertexWeight(2) != 0 {
		t.Errorf("vertex weights = %d,%d,%d", h.VertexWeight(0), h.VertexWeight(1), h.VertexWeight(2))
	}
	if h.TotalVertexWeight() != 11 {
		t.Errorf("TotalVertexWeight = %d, want 11", h.TotalVertexWeight())
	}
	if h.EdgeWeight(e0) != 4 || h.EdgeWeight(e1) != 1 {
		t.Errorf("edge weights = %d,%d", h.EdgeWeight(e0), h.EdgeWeight(e1))
	}
}

func TestNames(t *testing.T) {
	b := NewBuilder(2)
	e := b.AddEdge(0, 1)
	b.SetVertexName(0, "alpha")
	b.SetEdgeName(e, "netA")
	h := b.MustBuild()
	if !h.HasNames() {
		t.Error("HasNames = false")
	}
	if h.VertexName(0) != "alpha" {
		t.Errorf("VertexName(0) = %q", h.VertexName(0))
	}
	if h.VertexName(1) != "v1" {
		t.Errorf("VertexName(1) = %q, want synthesized v1", h.VertexName(1))
	}
	if h.EdgeName(e) != "netA" {
		t.Errorf("EdgeName = %q", h.EdgeName(e))
	}
}

func TestNamesAbsent(t *testing.T) {
	b := NewBuilder(1)
	b.AddEdge(0)
	h := b.MustBuild()
	if h.HasNames() {
		t.Error("HasNames = true for unnamed hypergraph")
	}
	if h.VertexName(0) != "v0" || h.EdgeName(0) != "e0" {
		t.Errorf("synthesized names = %q, %q", h.VertexName(0), h.EdgeName(0))
	}
}

func TestEdgeContains(t *testing.T) {
	h, err := FromEdges(6, [][]int{{0, 2, 4}, {1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		e, v int
		want bool
	}{
		{0, 0, true}, {0, 2, true}, {0, 4, true},
		{0, 1, false}, {0, 3, false}, {0, 5, false},
		{1, 1, true}, {1, 5, true}, {1, 0, false},
	}
	for _, c := range cases {
		if got := h.EdgeContains(c.e, c.v); got != c.want {
			t.Errorf("EdgeContains(%d,%d) = %v, want %v", c.e, c.v, got, c.want)
		}
	}
}

func TestStats(t *testing.T) {
	h, err := FromEdges(5, [][]int{{0, 1}, {0, 1, 2, 3}, {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if h.MaxEdgeSize() != 4 {
		t.Errorf("MaxEdgeSize = %d, want 4", h.MaxEdgeSize())
	}
	if h.MaxVertexDegree() != 3 {
		t.Errorf("MaxVertexDegree = %d, want 3 (vertex 0)", h.MaxVertexDegree())
	}
	if got := h.AverageEdgeSize(); got != 8.0/3.0 {
		t.Errorf("AverageEdgeSize = %g, want %g", got, 8.0/3.0)
	}
	if h.IsGraph() {
		t.Error("IsGraph = true for hypergraph with a 4-pin edge")
	}
	g, err := FromEdges(3, [][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsGraph() {
		t.Error("IsGraph = false for a 2-uniform hypergraph")
	}
}

func TestComponents(t *testing.T) {
	// Two edge-connected blocks {0,1,2} and {3,4}, plus isolated vertex 5.
	h, err := FromEdges(6, [][]int{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	comp, k := h.Components()
	if k != 3 {
		t.Fatalf("components = %d, want 3 (got labeling %v)", k, comp)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("vertices 0,1,2 not in one component: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Errorf("vertices 3,4 not in one component: %v", comp)
	}
	if comp[5] == comp[0] || comp[5] == comp[3] {
		t.Errorf("isolated vertex 5 merged into a component: %v", comp)
	}
}

func TestComponentsConnected(t *testing.T) {
	h, err := FromEdges(4, [][]int{{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	_, k := h.Components()
	if k != 1 {
		t.Errorf("components = %d, want 1", k)
	}
}

func TestFilterEdges(t *testing.T) {
	b := NewBuilder(5)
	b.SetVertexWeight(2, 7)
	e0 := b.AddEdge(0, 1)
	e1 := b.AddEdge(0, 1, 2, 3)
	e2 := b.AddEdge(3, 4)
	b.SetEdgeName(e0, "small0")
	b.SetEdgeName(e1, "big")
	b.SetEdgeName(e2, "small1")
	b.SetEdgeWeight(e2, 9)
	h := b.MustBuild()

	sub, origOf := h.FilterEdges(func(e int) bool { return h.EdgeSize(e) <= 2 })
	if sub.NumEdges() != 2 {
		t.Fatalf("filtered NumEdges = %d, want 2", sub.NumEdges())
	}
	if !reflect.DeepEqual(origOf, []int{0, 2}) {
		t.Errorf("origOf = %v, want [0 2]", origOf)
	}
	if sub.NumVertices() != 5 {
		t.Errorf("filtered NumVertices = %d, want 5", sub.NumVertices())
	}
	if sub.VertexWeight(2) != 7 {
		t.Errorf("vertex weight not preserved: %d", sub.VertexWeight(2))
	}
	if sub.EdgeWeight(1) != 9 {
		t.Errorf("edge weight not preserved: %d", sub.EdgeWeight(1))
	}
	if sub.EdgeName(1) != "small1" {
		t.Errorf("edge name not preserved: %q", sub.EdgeName(1))
	}
}

func TestFilterEdgesKeepAll(t *testing.T) {
	h, err := FromEdges(3, [][]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	sub, origOf := h.FilterEdges(func(int) bool { return true })
	if sub.NumEdges() != h.NumEdges() || len(origOf) != h.NumEdges() {
		t.Errorf("keep-all filter changed edge count")
	}
}

func TestString(t *testing.T) {
	h, err := FromEdges(3, [][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := "Hypergraph{vertices: 3, edges: 1, pins: 3}"
	if got := h.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// randomPinSets generates a random valid edge list for property tests.
func randomPinSets(rng *rand.Rand, n, m, maxSize int) [][]int {
	edges := make([][]int, m)
	for i := range edges {
		size := 1 + rng.Intn(maxSize)
		pins := make([]int, size)
		for j := range pins {
			pins[j] = rng.Intn(n)
		}
		edges[i] = pins
	}
	return edges
}

// TestPropertyIncidenceConsistency checks that the two CSR directions
// agree: v is in EdgePins(e) iff e is in VertexEdges(v).
func TestPropertyIncidenceConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		m := rng.Intn(60)
		h, err := FromEdges(n, randomPinSets(rng, n, m, 6))
		if err != nil {
			return false
		}
		// Forward: each pin appears in its vertex's incidence list.
		for e := 0; e < h.NumEdges(); e++ {
			for _, v := range h.EdgePins(e) {
				found := false
				for _, ie := range h.VertexEdges(v) {
					if ie == e {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		// Backward: each incident edge contains the vertex.
		for v := 0; v < h.NumVertices(); v++ {
			for _, e := range h.VertexEdges(v) {
				if !h.EdgeContains(e, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPinConservation checks sum of edge sizes == sum of vertex
// degrees == NumPins.
func TestPropertyPinConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		m := rng.Intn(80)
		h, err := FromEdges(n, randomPinSets(rng, n, m, 5))
		if err != nil {
			return false
		}
		sumSizes, sumDegs := 0, 0
		for e := 0; e < h.NumEdges(); e++ {
			sumSizes += h.EdgeSize(e)
		}
		for v := 0; v < h.NumVertices(); v++ {
			sumDegs += h.VertexDegree(v)
		}
		return sumSizes == h.NumPins() && sumDegs == h.NumPins()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPinsSortedUnique checks the normalization invariant.
func TestPropertyPinsSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		m := rng.Intn(50)
		h, err := FromEdges(n, randomPinSets(rng, n, m, 8))
		if err != nil {
			return false
		}
		for e := 0; e < h.NumEdges(); e++ {
			p := h.EdgePins(e)
			if !sort.IntsAreSorted(p) {
				return false
			}
			for i := 1; i < len(p); i++ {
				if p[i] == p[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid input")
		}
	}()
	b := NewBuilder(1)
	b.AddEdge(5)
	b.MustBuild()
}
