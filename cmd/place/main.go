// Command place runs min-cut placement on a netlist and reports the
// half-perimeter wirelength against a random placement baseline.
//
// Usage:
//
//	place -in chip.nets -rows 8 -cols 8 [-tp]
//
// Without -in it demonstrates on a generated std-cell netlist.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"fasthgp"
	"fasthgp/internal/gen"
	"fasthgp/internal/place"
)

func main() {
	var (
		in   = flag.String("in", "", "input netlist (netio format); empty = generated demo netlist")
		rows = flag.Int("rows", 8, "slot grid rows")
		cols = flag.Int("cols", 8, "slot grid columns")
		tp   = flag.Bool("tp", false, "enable terminal propagation")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var h *fasthgp.Hypergraph
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			fatal(err2)
		}
		h, err = fasthgp.ReadNetlist(f)
		f.Close()
	} else {
		fmt.Println("no -in given; generating a 512-module std-cell demo netlist")
		h, err = gen.Profile(gen.ProfileConfig{Modules: 512, Signals: 1024, Technology: gen.StdCell},
			rand.New(rand.NewSource(*seed)))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("netlist: %d modules, %d nets\n", h.NumVertices(), h.NumEdges())

	start := time.Now()
	pl, err := fasthgp.PlaceMinCut(h, fasthgp.PlaceOptions{
		Rows: *rows, Cols: *cols, Seed: *seed, TerminalPropagation: *tp,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	rp, err := place.RandomPlace(h, *rows, *cols, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}
	mc, rnd := fasthgp.HPWL(h, pl), place.HPWL(h, rp)
	fmt.Printf("min-cut placement: HPWL %d in %s (terminal propagation: %v)\n",
		mc, elapsed.Round(time.Millisecond), *tp)
	fmt.Printf("random placement:  HPWL %d\n", rnd)
	if rnd > 0 {
		fmt.Printf("improvement: %.1f%%\n", 100*(1-float64(mc)/float64(rnd)))
	}

	// Slot occupancy histogram.
	occ := make(map[[2]int]int)
	for v := range pl.X {
		occ[[2]int{pl.X[v], pl.Y[v]}]++
	}
	minOcc, maxOcc := 1<<30, 0
	for y := 0; y < *rows; y++ {
		for x := 0; x < *cols; x++ {
			c := occ[[2]int{x, y}]
			if c < minOcc {
				minOcc = c
			}
			if c > maxOcc {
				maxOcc = c
			}
		}
	}
	fmt.Printf("slot occupancy: min %d, max %d (ideal %.1f)\n",
		minOcc, maxOcc, float64(h.NumVertices())/float64(*rows**cols))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "place:", err)
	os.Exit(1)
}
