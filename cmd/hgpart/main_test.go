package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the hgpart executable:
// when re-exec'd with HGPART_MAIN=1 it runs the real CLI body instead
// of the test suite, so every exit-code path is exercised through a
// true process boundary without building a second binary.
func TestMain(m *testing.M) {
	if os.Getenv("HGPART_MAIN") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// execHgpart re-runs this test binary as the hgpart CLI.
func execHgpart(t *testing.T, args ...string) (exitCode int, stdout, stderr string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "HGPART_MAIN=1")
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err = cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return code, out.String(), errBuf.String()
}

const testNets = `module a
module b
module c
module d
net n1 a b
net n2 b c
net n3 c d
net n4 a d
`

func writeNetlist(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.nets")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The satellite regression: every CLI error path must print to stderr
// and exit non-zero — never a success status with a partial message.
func TestErrorPathsExitNonZeroOnStderr(t *testing.T) {
	valid := writeNetlist(t, testNets)
	cases := []struct {
		name     string
		args     []string
		wantCode int
		inStderr string
	}{
		{"missing -in", nil, 2, "-in is required"},
		{"bad flag", []string{"-no-such-flag"}, 2, "flag provided but not defined"},
		{"nonexistent file", []string{"-in", filepath.Join(t.TempDir(), "nope.nets")}, 1, "no such file"},
		{"malformed netlist", []string{"-in", writeNetlist(t, "module a\nfrobnicate a b\n")}, 1, "unknown directive"},
		{"unknown format", []string{"-in", valid, "-format", "xml"}, 1, `unknown format "xml"`},
		{"unknown algo", []string{"-in", valid, "-algo", "quantum"}, 1, `unknown algorithm "quantum"`},
		{"unknown completion", []string{"-in", valid, "-completion", "psychic"}, 1, `unknown completion "psychic"`},
		{"portfolio with k>2", []string{"-in", valid, "-k", "4", "-fallback", "fm"}, 1, "bipartitioning only"},
		{"portfolio unknown tier", []string{"-in", valid, "-fallback", "quantum"}, 1, "quantum"},
		{"bad fault spec", []string{"-in", valid, "-faultinject", "explode@nowhere:1"}, 1, `unknown kind "explode"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, stdout, stderr := execHgpart(t, tc.args...)
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d (stderr: %q)", code, tc.wantCode, stderr)
			}
			if !strings.Contains(stderr, tc.inStderr) {
				t.Errorf("stderr = %q, want it to contain %q", stderr, tc.inStderr)
			}
			if strings.Contains(stdout, "cutsize:") {
				t.Errorf("failed run still reported a cut on stdout: %q", stdout)
			}
		})
	}
}

// TestFaultInjectionSkipsStart: an injected engine-start panic is
// survived — the start shows as skipped in -stats, the run exits 0
// with an oracle-verified cut.
func TestFaultInjectionSkipsStart(t *testing.T) {
	code, stdout, stderr := execHgpart(t,
		"-in", writeNetlist(t, testNets), "-algo", "fm", "-starts", "4",
		"-faultinject", "panic@engine.start:1", "-stats", "-verify")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"1 start(s) panicked and were skipped", "verified:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

func TestHappyPathExitsZero(t *testing.T) {
	code, stdout, stderr := execHgpart(t, "-in", writeNetlist(t, testNets), "-starts", "4", "-verify")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"cutsize:", "verified:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// The ISSUE's example invocation: a fallback chain with a wall budget
// runs the portfolio and reports the winning tier.
func TestFallbackBudgetRunsPortfolio(t *testing.T) {
	code, stdout, stderr := execHgpart(t,
		"-in", writeNetlist(t, testNets),
		"-algo", "multilevel", "-fallback", "fm,core", "-budget", "2s",
		"-starts", "4", "-verify")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, stderr)
	}
	for _, want := range []string{"portfolio: chain multilevel -> fm -> core", "winner: tier 0 (multilevel)", "cutsize:", "verified:"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}
}
