// Command hgpart partitions a netlist file with any of the library's
// algorithms and reports the cut.
//
// Usage:
//
//	hgpart -in netlist.nets [-algo algI|kl|fm|sa|random] [flags]
//
// With -algo algI (the default), the paper's Algorithm I runs with the
// given number of random longest-path starts, completion rule and
// large-net threshold. The tool prints cutsize, balance, timing, and
// optionally the side assignment of every module.
//
// Every algorithm runs on the shared multi-start engine: -starts sets
// the multi-start count, -parallel fans the starts across workers
// (never changing the result), -timeout returns the best cut found
// within a wall-clock budget, and -stats prints the engine's account
// of the run. -verify recomputes every invariant of the reported
// result with the internal/verify oracle and exits nonzero on any
// violation.
//
// -fallback names a comma-separated chain of cheaper algorithms to
// degrade to when the primary -algo panics, times out, or returns an
// oracle-rejected result, and -budget bounds the whole chain's wall
// time; together they run the resilience portfolio:
//
//	hgpart -in netlist.nets -algo multilevel -fallback fm,core -budget 2s
//
// -checkpoint journals every completed start to a crash-safe file;
// after a crash (power loss, OOM kill, SIGKILL) the same invocation
// plus -resume continues from the journal and returns a result
// bit-for-bit identical to an uninterrupted run:
//
//	hgpart -in netlist.nets -algo fm -starts 50 -checkpoint run.ckpt -resume
//
// -scrub is a standalone mode: it re-walks the CRC frames of any
// checkpoint or WAL journal read-only and exits 0 (clean) or 1 (torn
// tail or mid-file rot), without truncating or repairing anything:
//
//	hgpart -scrub /var/lib/hgpartd/wal
//
// -epsilon and -fixed impose the unified balance contract on any
// algorithm: -epsilon bounds each side at (1+eps)·⌈w(V)/2⌉ (per part
// for -k > 2), and -fixed names an hMETIS-style fix file pinning
// vertices to sides (one part id per line, -1 free). Netlists in the
// nets format may also pin modules inline with fixed directives; a
// -fixed file overrides them. The result is certified against the
// contract when -verify is set:
//
//	hgpart -in netlist.nets -algo fm -epsilon 0.1 -fixed pins.fix -verify
//
// -cpuprofile and -memprofile write pprof profiles of the run (the CPU
// profile covers everything after flag parsing; the heap profile is
// captured after a final GC on exit) for use with go tool pprof.
//
// Every error path prints to stderr and exits non-zero (2 for flag
// errors, 1 for everything else); partial results are never reported
// with a success status.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fasthgp"
	"fasthgp/internal/checkpoint"
	"fasthgp/internal/faultinject"
	"fasthgp/internal/partition"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, executes, writes
// reports to stdout and errors to stderr, and returns the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hgpart", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in         = fs.String("in", "", "input netlist file (netio format); required")
		algo       = fs.String("algo", "algI", "algorithm: algI, multilevel, kl, fm, sa, flow, spectral, random")
		format     = fs.String("format", "nets", "input format: nets (netio) or hgr (hMETIS)")
		k          = fs.Int("k", 2, "number of parts; k > 2 uses K-way recursive bisection")
		starts     = fs.Int("starts", 50, "multi-start count: longest paths (algI), restarts (kl/fm/sa/spectral/random), seed pairs (flow), V-cycles (multilevel)")
		threshold  = fs.Int("threshold", 0, "Algorithm I: exclude nets with >= this many pins (0 = off)")
		completion = fs.String("completion", "greedy", "Algorithm I: boundary completion: greedy, exact, weighted")
		objective  = fs.String("objective", "cut", "Algorithm I: objective: cut, quotient")
		seed       = fs.Int64("seed", 1, "random seed")
		epsilon    = fs.Float64("epsilon", 0, "balance bound: each side at most (1+epsilon)*ceil(total/k) weight (0 = unconstrained)")
		fixedPath  = fs.String("fixed", "", "hMETIS-style fix file pinning vertices to sides (one part id per line, -1 = free); overrides inline fixed directives")
		parallel   = fs.Int("parallel", 0, "engine workers fanning the starts (0 = GOMAXPROCS); affects wall time only, never the result")
		workers    = fs.Int("workers", 0, "intra-start kernel workers (dual-graph build, double BFS) per start (0 = serial); affects wall time only, never the result")
		timeout    = fs.Duration("timeout", 0, "wall-clock budget, e.g. 500ms; on expiry the best cut found so far is reported (0 = none)")
		fallback   = fs.String("fallback", "", "comma-separated fallback chain after -algo (e.g. fm,core); runs the resilience portfolio")
		budget     = fs.Duration("budget", 0, "portfolio wall budget across the whole -fallback chain, e.g. 2s (0 = -timeout)")
		ckptPath   = fs.String("checkpoint", "", "crash-safe journal path: every completed start is fsynced there as the run progresses")
		resume     = fs.Bool("resume", false, "with -checkpoint: resume an interrupted run from the journal (bit-for-bit identical result); a missing journal starts fresh")
		scrubPath  = fs.String("scrub", "", "standalone mode: integrity-scrub the checkpoint/WAL journal at this path (read-only CRC re-walk) and exit — 0 clean, 1 torn or unreadable")
		faults     = fs.String("faultinject", "", "fault-injection spec, e.g. 'panic@engine.start:2' (also read from FASTHGP_FAULTS)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the whole run to this file (go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
		vcycle     = fs.Bool("vcycle", true, "multilevel: corridor max-flow refinement at every uncoarsening level (false = FM-only flat pass)")
		corridor   = fs.Float64("corridor", 0, "multilevel: per-side flow corridor weight budget as a fraction of half the total weight (0 = default 0.1)")
		stats      = fs.Bool("stats", false, "print engine multi-start statistics")
		doVerify   = fs.Bool("verify", false, "recheck the result with the invariant oracle; exit nonzero on any violation")
		verbose    = fs.Bool("v", false, "print the side of every module")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "hgpart:", err)
		return 1
	}
	// Standalone scrub mode: re-walk a journal's CRC frames read-only and
	// report, without opening it for repair — the operator's tool for
	// checking a WAL or checkpoint for bit rot before trusting a replay.
	if *scrubPath != "" {
		rep, err := checkpoint.ScrubFile(*scrubPath)
		if err != nil {
			return fail(fmt.Errorf("scrub: %w", err))
		}
		fmt.Fprintln(stdout, rep.String())
		if !rep.OK() {
			fmt.Fprintln(stderr, "hgpart: journal is torn or rotten; Open would truncate to the intact prefix")
			return 1
		}
		return 0
	}
	if *in == "" {
		fmt.Fprintln(stderr, "hgpart: -in is required")
		fs.Usage()
		return 2
	}
	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			return fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}
	if *memProfile != "" {
		// Written on every exit path so a profile survives even a failed
		// run; GC first so the heap profile reflects live objects.
		defer func() {
			pf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "hgpart: memprofile:", err)
				return
			}
			defer pf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintln(stderr, "hgpart: memprofile:", err)
			}
		}()
	}
	if spec := *faults; spec != "" || os.Getenv("FASTHGP_FAULTS") != "" {
		if spec == "" {
			spec = os.Getenv("FASTHGP_FAULTS")
		}
		plan, err := faultinject.ParseSpec(spec)
		if err != nil {
			return fail(err)
		}
		defer faultinject.Install(plan)()
	}
	var h *fasthgp.Hypergraph
	var inlineFixed []int8
	switch *format {
	case "nets":
		f, err := os.Open(*in)
		if err != nil {
			return fail(err)
		}
		h, inlineFixed, err = fasthgp.ReadNetlistFixed(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
	case "hgr":
		// Zero-copy path: mmap the file where the platform allows, so
		// even gigabyte benchmarks never materialize token slices.
		var err error
		h, err = fasthgp.ReadHMetisFile(*in)
		if err != nil {
			return fail(err)
		}
	default:
		return fail(fmt.Errorf("unknown format %q", *format))
	}
	constraint := fasthgp.Constraint{Epsilon: *epsilon, FixedSide: inlineFixed}
	if *fixedPath != "" {
		ff, err := os.Open(*fixedPath)
		if err != nil {
			return fail(err)
		}
		constraint.FixedSide, err = fasthgp.ReadHMetisFix(ff, h.NumVertices())
		ff.Close()
		if err != nil {
			return fail(err)
		}
	}
	if err := constraint.Validate(h.NumVertices(), *k); err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "netlist: %d modules, %d nets, %d pins\n", h.NumVertices(), h.NumEdges(), h.NumPins())
	if !constraint.IsZero() {
		pinned := 0
		for _, f := range constraint.FixedSide {
			if f >= 0 {
				pinned++
			}
		}
		fmt.Fprintf(stdout, "constraint: epsilon %g, %d fixed vertices\n", constraint.Epsilon, pinned)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *fallback != "" || *budget > 0 {
		if *k > 2 {
			return fail(fmt.Errorf("-fallback/-budget support bipartitioning only (got -k %d)", *k))
		}
		if *ckptPath != "" {
			return fail(fmt.Errorf("-checkpoint cannot be combined with -fallback/-budget"))
		}
		return runPortfolio(ctx, h, *algo, *fallback, *budget, *starts, *seed, *parallel, *workers, constraint, *doVerify, *verbose, stdout, stderr)
	}

	if *resume && *ckptPath == "" {
		return fail(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *ckptPath != "" {
		if *k > 2 {
			return fail(fmt.Errorf("-checkpoint supports bipartitioning only (got -k %d)", *k))
		}
		return runCheckpointed(ctx, h, *algo, *ckptPath, *resume,
			fasthgp.AlgoConfig{Starts: *starts, Seed: *seed, Parallelism: *parallel, KernelWorkers: *workers, Constraint: constraint},
			*stats, *doVerify, *verbose, stdout, stderr)
	}

	if *k > 2 {
		start := time.Now()
		res, err := fasthgp.KWayCtx(ctx, h, fasthgp.KWayOptions{K: *k, Starts: *starts, Seed: *seed, Parallelism: *parallel, KernelWorkers: *workers, Constraint: constraint})
		if err != nil {
			return fail(err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stdout, "k-way recursive bisection: k = %d\n", *k)
		fmt.Fprintf(stdout, "cut nets: %d (of %d), connectivity sum(lambda-1): %d\n", res.CutNets, h.NumEdges(), res.Connectivity)
		fmt.Fprintf(stdout, "part weights: %v\n", res.PartWeights)
		fmt.Fprintf(stdout, "time: %s\n", elapsed.Round(time.Microsecond))
		if *stats {
			printStats(stdout, res.Engine)
		}
		if *doVerify {
			rep, err := fasthgp.VerifyKWay(h, res.Part, *k)
			if err != nil {
				return fail(fmt.Errorf("verification FAILED: %w", err))
			}
			if rep.CutNets != res.CutNets || rep.Connectivity != res.Connectivity {
				return fail(fmt.Errorf("verification FAILED: claimed cut %d/connectivity %d, oracle recomputed %d/%d",
					res.CutNets, res.Connectivity, rep.CutNets, rep.Connectivity))
			}
			fmt.Fprintf(stdout, "verified: %d cut nets, connectivity %d, part weights %v\n",
				rep.CutNets, rep.Connectivity, rep.PartWeights)
		}
		if *verbose {
			for v := 0; v < h.NumVertices(); v++ {
				fmt.Fprintf(stdout, "  %s %d\n", h.VertexName(v), res.Part[v])
			}
		}
		return 0
	}

	var p *fasthgp.Bipartition
	var es fasthgp.EngineStats
	start := time.Now()
	switch *algo {
	case "algI":
		opts := fasthgp.Options{Starts: *starts, Threshold: *threshold, Seed: *seed, Parallelism: *parallel, KernelWorkers: *workers, Constraint: constraint}
		switch *completion {
		case "greedy":
			opts.Completion = fasthgp.CompletionGreedy
		case "exact":
			opts.Completion = fasthgp.CompletionExact
		case "weighted":
			opts.Completion = fasthgp.CompletionWeighted
		default:
			return fail(fmt.Errorf("unknown completion %q", *completion))
		}
		switch *objective {
		case "cut":
			opts.Objective = fasthgp.MinCut
		case "quotient":
			opts.Objective = fasthgp.MinQuotient
		default:
			return fail(fmt.Errorf("unknown objective %q", *objective))
		}
		res, err := fasthgp.PartitionCtx(ctx, h, opts)
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Stats.Engine
		fmt.Fprintf(stdout, "algorithm I: G = (%d vertices, %d edges), boundary %d, BFS depth %d",
			res.Stats.GVertices, res.Stats.GEdges, res.Stats.BoundarySize, res.Stats.BFSDepth)
		if res.Stats.Disconnected {
			fmt.Fprint(stdout, " [disconnected: zero-cut packing]")
		}
		fmt.Fprintln(stdout)
	case "multilevel":
		res, err := fasthgp.MultilevelCtx(ctx, h, fasthgp.MultilevelOptions{
			Starts: *starts, Seed: *seed, Parallelism: *parallel, KernelWorkers: *workers,
			Constraint: constraint, DisableFlow: !*vcycle, CorridorFraction: *corridor})
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Fprintf(stdout, "multilevel: %d levels, coarsest %d vertices\n", res.Levels, res.CoarsestVertices)
		if *vcycle {
			vc := res.VCycle
			fmt.Fprintf(stdout, "flow refinement: %d/%d rounds accepted, %d corridor vertices, %d flow nodes, %d augmentations, gain %d\n",
				vc.FlowAccepted, vc.FlowRounds, vc.CorridorVertices, vc.FlowNodes, vc.FlowAugmentations, vc.FlowGain)
		}
	case "kl":
		res, err := fasthgp.KLCtx(ctx, h, fasthgp.KLOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel, Constraint: constraint})
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Fprintf(stdout, "kernighan-lin: %d passes\n", res.Passes)
	case "fm":
		res, err := fasthgp.FMCtx(ctx, h, fasthgp.FMOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel, Constraint: constraint})
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Fprintf(stdout, "fiduccia-mattheyses: %d passes\n", res.Passes)
	case "spectral":
		res, err := fasthgp.SpectralCtx(ctx, h, fasthgp.SpectralOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel, Constraint: constraint})
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Fprintf(stdout, "spectral: %d power iterations\n", res.Iterations)
	case "flow":
		res, err := fasthgp.FlowCtx(ctx, h, fasthgp.FlowOptions{SeedPairs: *starts, Seed: *seed, Parallelism: *parallel, Constraint: constraint})
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Fprintf(stdout, "flow-based: min s-t net cut value %d over seed pairs\n", res.FlowValue)
	case "sa":
		res, err := fasthgp.AnnealCtx(ctx, h, fasthgp.AnnealOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel, Constraint: constraint})
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Fprintf(stdout, "simulated annealing: %d temperatures, %d accepted moves\n", res.Temperatures, res.Accepted)
	case "random":
		res, err := runRegistered(ctx, "random", h, fasthgp.AlgoConfig{Starts: *starts, Seed: *seed, Parallelism: *parallel, Constraint: constraint})
		if err != nil {
			return fail(err)
		}
		p, es = res.Partition, res.Engine
	default:
		return fail(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(start)

	cut := fasthgp.CutSize(h, p)
	reportBipartition(stdout, h, p, cut, elapsed)
	if *stats {
		printStats(stdout, es)
	}
	if *doVerify {
		if code := verifyBipartition(stdout, stderr, h, p, cut, constraint); code != 0 {
			return code
		}
	}
	if *verbose {
		printSides(stdout, h, p)
	}
	return 0
}

// runCheckpointed runs one registry algorithm with the crash-safe
// journal: completed starts are fsynced as the run progresses, and a
// -resume run continues from the recovered progress while returning the
// same cut an uninterrupted run would.
func runCheckpointed(ctx context.Context, h *fasthgp.Hypergraph, algo, path string, resume bool,
	cfg fasthgp.AlgoConfig, stats, doVerify, verbose bool, stdout, stderr io.Writer) int {
	constraint := cfg.Constraint
	fail := func(err error) int {
		fmt.Fprintln(stderr, "hgpart:", err)
		return 1
	}
	start := time.Now()
	res, err := fasthgp.PartitionCheckpointed(ctx, h, algo, cfg, path, resume)
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "checkpoint: journal %s, resumed %d of %d starts\n",
		path, res.Engine.StartsResumed, res.Engine.StartsRun)
	if res.Engine.CheckpointErr != nil {
		// Journaling degraded mid-run; the result itself is unaffected,
		// but a crash from here on resumes from the last good record.
		fmt.Fprintln(stderr, "hgpart: warning: checkpoint journaling degraded:", res.Engine.CheckpointErr)
	}
	reportBipartition(stdout, h, res.Partition, res.CutSize, elapsed)
	if stats {
		printStats(stdout, res.Engine)
	}
	if doVerify {
		if code := verifyBipartition(stdout, stderr, h, res.Partition, res.CutSize, constraint); code != 0 {
			return code
		}
	}
	if verbose {
		printSides(stdout, h, res.Partition)
	}
	return 0
}

// runPortfolio executes the deadline-aware fallback chain and reports
// the winning tier.
func runPortfolio(ctx context.Context, h *fasthgp.Hypergraph, algo, fallback string, budget time.Duration,
	starts int, seed int64, parallel, workers int, constraint fasthgp.Constraint, doVerify, verbose bool, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "hgpart:", err)
		return 1
	}
	chain := []string{algo}
	for _, name := range strings.Split(fallback, ",") {
		if name = strings.TrimSpace(name); name != "" {
			chain = append(chain, name)
		}
	}
	fmt.Fprintf(stdout, "portfolio: chain %s, budget %s\n", strings.Join(chain, " -> "), budget)
	start := time.Now()
	res, err := fasthgp.PartitionPortfolio(ctx, h,
		fasthgp.WithChain(chain...), fasthgp.WithBudget(budget),
		fasthgp.WithStarts(starts), fasthgp.WithSeed(seed), fasthgp.WithParallelism(parallel),
		fasthgp.WithKernelWorkers(workers), fasthgp.WithConstraint(constraint))
	if err != nil {
		return fail(err)
	}
	elapsed := time.Since(start)
	for i, tr := range res.Tiers {
		status := "ok"
		switch {
		case tr.Err != nil && tr.Partial:
			status = fmt.Sprintf("partial (%v)", tr.Err)
		case tr.Err != nil:
			status = fmt.Sprintf("failed (%v)", tr.Err)
		}
		fmt.Fprintf(stdout, "tier %d (%s): %d attempt(s), %s, %s\n", i, tr.Name, tr.Attempts, tr.Wall.Round(time.Microsecond), status)
	}
	degraded := ""
	if res.Degraded {
		degraded = " [degraded]"
	}
	fmt.Fprintf(stdout, "winner: tier %d (%s)%s\n", res.Tier, res.TierName, degraded)
	reportBipartition(stdout, h, res.Partition, res.CutSize, elapsed)
	if doVerify {
		if code := verifyBipartition(stdout, stderr, h, res.Partition, res.CutSize, constraint); code != 0 {
			return code
		}
	}
	if verbose {
		printSides(stdout, h, res.Partition)
	}
	return 0
}

// reportBipartition prints the standard cut/balance summary.
func reportBipartition(stdout io.Writer, h *fasthgp.Hypergraph, p *fasthgp.Bipartition, cut int, elapsed time.Duration) {
	l, r, _ := p.Counts()
	fmt.Fprintf(stdout, "cutsize: %d (of %d nets)\n", cut, h.NumEdges())
	fmt.Fprintf(stdout, "sides: %d | %d modules, weight imbalance %d of %d\n",
		l, r, fasthgp.Imbalance(h, p), h.TotalVertexWeight())
	fmt.Fprintf(stdout, "quotient cut: %.4f\n", fasthgp.QuotientCut(h, p))
	fmt.Fprintf(stdout, "time: %s\n", elapsed.Round(time.Microsecond))
}

// verifyBipartition runs the oracle — including the balance contract
// when one is in force — and reports; non-zero on violation.
func verifyBipartition(stdout, stderr io.Writer, h *fasthgp.Hypergraph, p *fasthgp.Bipartition, cut int, c fasthgp.Constraint) int {
	rep, err := fasthgp.VerifyCut(h, p, cut)
	if err == nil && !c.IsZero() {
		_, err = fasthgp.VerifyConstraint(h, p, c)
	}
	if err != nil {
		fmt.Fprintln(stderr, "hgpart:", fmt.Errorf("verification FAILED: %w", err))
		return 1
	}
	fmt.Fprintf(stdout, "verified: cut %d (weighted %d), sides %d/%d, weights %d/%d",
		rep.CutSize, rep.WeightedCut, rep.Left, rep.Right, rep.LeftWeight, rep.RightWeight)
	if !c.IsZero() {
		fmt.Fprint(stdout, " [constraint satisfied]")
	}
	fmt.Fprintln(stdout)
	return 0
}

// printSides lists every module's side.
func printSides(stdout io.Writer, h *fasthgp.Hypergraph, p *fasthgp.Bipartition) {
	for v := 0; v < h.NumVertices(); v++ {
		side := "L"
		if p.Side(v) == partition.Right {
			side = "R"
		}
		fmt.Fprintf(stdout, "  %s %s\n", h.VertexName(v), side)
	}
}

// runRegistered invokes an algorithm from the Algorithms registry by
// name.
func runRegistered(ctx context.Context, name string, h *fasthgp.Hypergraph, cfg fasthgp.AlgoConfig) (*fasthgp.AlgoResult, error) {
	for _, a := range fasthgp.Algorithms() {
		if a.Name == name {
			return a.Run(ctx, h, cfg)
		}
	}
	return nil, fmt.Errorf("algorithm %q not in registry", name)
}

// printStats reports the engine's account of a multi-start run.
func printStats(stdout io.Writer, es fasthgp.EngineStats) {
	fmt.Fprintf(stdout, "engine: %d/%d starts, best at start %d, %d workers, wall %s, cpu %s",
		es.StartsRun, es.StartsRequested, es.BestStart, es.Parallelism,
		es.Wall.Round(time.Microsecond), es.CPU.Round(time.Microsecond))
	if es.Cancelled {
		fmt.Fprint(stdout, " [cancelled: best-so-far]")
	}
	if es.StartsResumed > 0 {
		fmt.Fprintf(stdout, " [%d start(s) resumed from the checkpoint journal]", es.StartsResumed)
	}
	if es.StartsFailed > 0 {
		fmt.Fprintf(stdout, " [%d start(s) panicked and were skipped]", es.StartsFailed)
	}
	fmt.Fprintln(stdout)
	if len(es.Cuts) > 0 {
		fmt.Fprintf(stdout, "engine: per-start cuts: %v\n", es.Cuts)
	}
}
