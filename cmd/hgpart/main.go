// Command hgpart partitions a netlist file with any of the library's
// algorithms and reports the cut.
//
// Usage:
//
//	hgpart -in netlist.nets [-algo algI|kl|fm|sa|random] [flags]
//
// With -algo algI (the default), the paper's Algorithm I runs with the
// given number of random longest-path starts, completion rule and
// large-net threshold. The tool prints cutsize, balance, timing, and
// optionally the side assignment of every module.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"fasthgp"
	"fasthgp/internal/partition"
)

func main() {
	var (
		in         = flag.String("in", "", "input netlist file (netio format); required")
		algo       = flag.String("algo", "algI", "algorithm: algI, multilevel, kl, fm, sa, flow, spectral, random")
		format     = flag.String("format", "nets", "input format: nets (netio) or hgr (hMETIS)")
		k          = flag.Int("k", 2, "number of parts; k > 2 uses K-way recursive bisection")
		starts     = flag.Int("starts", 50, "Algorithm I: random longest paths to examine")
		threshold  = flag.Int("threshold", 0, "Algorithm I: exclude nets with >= this many pins (0 = off)")
		completion = flag.String("completion", "greedy", "Algorithm I: boundary completion: greedy, exact, weighted")
		objective  = flag.String("objective", "cut", "Algorithm I: objective: cut, quotient")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "print the side of every module")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hgpart: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	var h *fasthgp.Hypergraph
	switch *format {
	case "nets":
		h, err = fasthgp.ReadNetlist(f)
	case "hgr":
		h, err = fasthgp.ReadHMetis(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("netlist: %d modules, %d nets, %d pins\n", h.NumVertices(), h.NumEdges(), h.NumPins())

	if *k > 2 {
		start := time.Now()
		res, err := fasthgp.KWay(h, fasthgp.KWayOptions{K: *k, Starts: *starts, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("k-way recursive bisection: k = %d\n", *k)
		fmt.Printf("cut nets: %d (of %d), connectivity sum(lambda-1): %d\n", res.CutNets, h.NumEdges(), res.Connectivity)
		fmt.Printf("part weights: %v\n", res.PartWeights)
		fmt.Printf("time: %s\n", elapsed.Round(time.Microsecond))
		if *verbose {
			for v := 0; v < h.NumVertices(); v++ {
				fmt.Printf("  %s %d\n", h.VertexName(v), res.Part[v])
			}
		}
		return
	}

	var p *fasthgp.Bipartition
	start := time.Now()
	switch *algo {
	case "algI":
		opts := fasthgp.Options{Starts: *starts, Threshold: *threshold, Seed: *seed}
		switch *completion {
		case "greedy":
			opts.Completion = fasthgp.CompletionGreedy
		case "exact":
			opts.Completion = fasthgp.CompletionExact
		case "weighted":
			opts.Completion = fasthgp.CompletionWeighted
		default:
			fatal(fmt.Errorf("unknown completion %q", *completion))
		}
		switch *objective {
		case "cut":
			opts.Objective = fasthgp.MinCut
		case "quotient":
			opts.Objective = fasthgp.MinQuotient
		default:
			fatal(fmt.Errorf("unknown objective %q", *objective))
		}
		res, err := fasthgp.Partition(h, opts)
		if err != nil {
			fatal(err)
		}
		p = res.Partition
		fmt.Printf("algorithm I: G = (%d vertices, %d edges), boundary %d, BFS depth %d",
			res.Stats.GVertices, res.Stats.GEdges, res.Stats.BoundarySize, res.Stats.BFSDepth)
		if res.Stats.Disconnected {
			fmt.Print(" [disconnected: zero-cut packing]")
		}
		fmt.Println()
	case "multilevel":
		res, err := fasthgp.Multilevel(h, fasthgp.MultilevelOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		p = res.Partition
		fmt.Printf("multilevel: %d levels, coarsest %d vertices\n", res.Levels, res.CoarsestVertices)
	case "kl":
		res, err := fasthgp.KL(h, fasthgp.KLOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		p = res.Partition
		fmt.Printf("kernighan-lin: %d passes\n", res.Passes)
	case "fm":
		res, err := fasthgp.FM(h, fasthgp.FMOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		p = res.Partition
		fmt.Printf("fiduccia-mattheyses: %d passes\n", res.Passes)
	case "spectral":
		res, err := fasthgp.Spectral(h, fasthgp.SpectralOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		p = res.Partition
		fmt.Printf("spectral: %d power iterations\n", res.Iterations)
	case "flow":
		res, err := fasthgp.Flow(h, fasthgp.FlowOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		p = res.Partition
		fmt.Printf("flow-based: min s-t net cut value %d over seed pairs\n", res.FlowValue)
	case "sa":
		res, err := fasthgp.Anneal(h, fasthgp.AnnealOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		p = res.Partition
		fmt.Printf("simulated annealing: %d temperatures, %d accepted moves\n", res.Temperatures, res.Accepted)
	case "random":
		rp, _, err := fasthgp.RandomBisection(h, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fatal(err)
		}
		p = rp
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(start)

	cut := fasthgp.CutSize(h, p)
	l, r, _ := p.Counts()
	fmt.Printf("cutsize: %d (of %d nets)\n", cut, h.NumEdges())
	fmt.Printf("sides: %d | %d modules, weight imbalance %d of %d\n",
		l, r, fasthgp.Imbalance(h, p), h.TotalVertexWeight())
	fmt.Printf("quotient cut: %.4f\n", fasthgp.QuotientCut(h, p))
	fmt.Printf("time: %s\n", elapsed.Round(time.Microsecond))
	if *verbose {
		for v := 0; v < h.NumVertices(); v++ {
			side := "L"
			if p.Side(v) == partition.Right {
				side = "R"
			}
			fmt.Printf("  %s %s\n", h.VertexName(v), side)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgpart:", err)
	os.Exit(1)
}
