// Command hgpart partitions a netlist file with any of the library's
// algorithms and reports the cut.
//
// Usage:
//
//	hgpart -in netlist.nets [-algo algI|kl|fm|sa|random] [flags]
//
// With -algo algI (the default), the paper's Algorithm I runs with the
// given number of random longest-path starts, completion rule and
// large-net threshold. The tool prints cutsize, balance, timing, and
// optionally the side assignment of every module.
//
// Every algorithm runs on the shared multi-start engine: -starts sets
// the multi-start count, -parallel fans the starts across workers
// (never changing the result), -timeout returns the best cut found
// within a wall-clock budget, and -stats prints the engine's account
// of the run. -verify recomputes every invariant of the reported
// result with the internal/verify oracle and exits nonzero on any
// violation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"fasthgp"
	"fasthgp/internal/partition"
)

func main() {
	var (
		in         = flag.String("in", "", "input netlist file (netio format); required")
		algo       = flag.String("algo", "algI", "algorithm: algI, multilevel, kl, fm, sa, flow, spectral, random")
		format     = flag.String("format", "nets", "input format: nets (netio) or hgr (hMETIS)")
		k          = flag.Int("k", 2, "number of parts; k > 2 uses K-way recursive bisection")
		starts     = flag.Int("starts", 50, "multi-start count: longest paths (algI), restarts (kl/fm/sa/spectral/random), seed pairs (flow), V-cycles (multilevel)")
		threshold  = flag.Int("threshold", 0, "Algorithm I: exclude nets with >= this many pins (0 = off)")
		completion = flag.String("completion", "greedy", "Algorithm I: boundary completion: greedy, exact, weighted")
		objective  = flag.String("objective", "cut", "Algorithm I: objective: cut, quotient")
		seed       = flag.Int64("seed", 1, "random seed")
		parallel   = flag.Int("parallel", 0, "engine workers fanning the starts (0 = GOMAXPROCS); affects wall time only, never the result")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget, e.g. 500ms; on expiry the best cut found so far is reported (0 = none)")
		stats      = flag.Bool("stats", false, "print engine multi-start statistics")
		doVerify   = flag.Bool("verify", false, "recheck the result with the invariant oracle; exit nonzero on any violation")
		verbose    = flag.Bool("v", false, "print the side of every module")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hgpart: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	var h *fasthgp.Hypergraph
	switch *format {
	case "nets":
		h, err = fasthgp.ReadNetlist(f)
	case "hgr":
		h, err = fasthgp.ReadHMetis(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("netlist: %d modules, %d nets, %d pins\n", h.NumVertices(), h.NumEdges(), h.NumPins())

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *k > 2 {
		start := time.Now()
		res, err := fasthgp.KWayCtx(ctx, h, fasthgp.KWayOptions{K: *k, Starts: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("k-way recursive bisection: k = %d\n", *k)
		fmt.Printf("cut nets: %d (of %d), connectivity sum(lambda-1): %d\n", res.CutNets, h.NumEdges(), res.Connectivity)
		fmt.Printf("part weights: %v\n", res.PartWeights)
		fmt.Printf("time: %s\n", elapsed.Round(time.Microsecond))
		if *stats {
			printStats(res.Engine)
		}
		if *doVerify {
			rep, err := fasthgp.VerifyKWay(h, res.Part, *k)
			if err != nil {
				fatal(fmt.Errorf("verification FAILED: %w", err))
			}
			if rep.CutNets != res.CutNets || rep.Connectivity != res.Connectivity {
				fatal(fmt.Errorf("verification FAILED: claimed cut %d/connectivity %d, oracle recomputed %d/%d",
					res.CutNets, res.Connectivity, rep.CutNets, rep.Connectivity))
			}
			fmt.Printf("verified: %d cut nets, connectivity %d, part weights %v\n",
				rep.CutNets, rep.Connectivity, rep.PartWeights)
		}
		if *verbose {
			for v := 0; v < h.NumVertices(); v++ {
				fmt.Printf("  %s %d\n", h.VertexName(v), res.Part[v])
			}
		}
		return
	}

	var p *fasthgp.Bipartition
	var es fasthgp.EngineStats
	start := time.Now()
	switch *algo {
	case "algI":
		opts := fasthgp.Options{Starts: *starts, Threshold: *threshold, Seed: *seed, Parallelism: *parallel}
		switch *completion {
		case "greedy":
			opts.Completion = fasthgp.CompletionGreedy
		case "exact":
			opts.Completion = fasthgp.CompletionExact
		case "weighted":
			opts.Completion = fasthgp.CompletionWeighted
		default:
			fatal(fmt.Errorf("unknown completion %q", *completion))
		}
		switch *objective {
		case "cut":
			opts.Objective = fasthgp.MinCut
		case "quotient":
			opts.Objective = fasthgp.MinQuotient
		default:
			fatal(fmt.Errorf("unknown objective %q", *objective))
		}
		res, err := fasthgp.PartitionCtx(ctx, h, opts)
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Stats.Engine
		fmt.Printf("algorithm I: G = (%d vertices, %d edges), boundary %d, BFS depth %d",
			res.Stats.GVertices, res.Stats.GEdges, res.Stats.BoundarySize, res.Stats.BFSDepth)
		if res.Stats.Disconnected {
			fmt.Print(" [disconnected: zero-cut packing]")
		}
		fmt.Println()
	case "multilevel":
		res, err := fasthgp.MultilevelCtx(ctx, h, fasthgp.MultilevelOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Printf("multilevel: %d levels, coarsest %d vertices\n", res.Levels, res.CoarsestVertices)
	case "kl":
		res, err := fasthgp.KLCtx(ctx, h, fasthgp.KLOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Printf("kernighan-lin: %d passes\n", res.Passes)
	case "fm":
		res, err := fasthgp.FMCtx(ctx, h, fasthgp.FMOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Printf("fiduccia-mattheyses: %d passes\n", res.Passes)
	case "spectral":
		res, err := fasthgp.SpectralCtx(ctx, h, fasthgp.SpectralOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Printf("spectral: %d power iterations\n", res.Iterations)
	case "flow":
		res, err := fasthgp.FlowCtx(ctx, h, fasthgp.FlowOptions{SeedPairs: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Printf("flow-based: min s-t net cut value %d over seed pairs\n", res.FlowValue)
	case "sa":
		res, err := fasthgp.AnnealCtx(ctx, h, fasthgp.AnnealOptions{Starts: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Engine
		fmt.Printf("simulated annealing: %d temperatures, %d accepted moves\n", res.Temperatures, res.Accepted)
	case "random":
		res, err := runRegistered(ctx, "random", h, fasthgp.AlgoConfig{Starts: *starts, Seed: *seed, Parallelism: *parallel})
		if err != nil {
			fatal(err)
		}
		p, es = res.Partition, res.Engine
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	elapsed := time.Since(start)

	cut := fasthgp.CutSize(h, p)
	l, r, _ := p.Counts()
	fmt.Printf("cutsize: %d (of %d nets)\n", cut, h.NumEdges())
	fmt.Printf("sides: %d | %d modules, weight imbalance %d of %d\n",
		l, r, fasthgp.Imbalance(h, p), h.TotalVertexWeight())
	fmt.Printf("quotient cut: %.4f\n", fasthgp.QuotientCut(h, p))
	fmt.Printf("time: %s\n", elapsed.Round(time.Microsecond))
	if *stats {
		printStats(es)
	}
	if *doVerify {
		rep, err := fasthgp.VerifyCut(h, p, cut)
		if err != nil {
			fatal(fmt.Errorf("verification FAILED: %w", err))
		}
		fmt.Printf("verified: cut %d (weighted %d), sides %d/%d, weights %d/%d\n",
			rep.CutSize, rep.WeightedCut, rep.Left, rep.Right, rep.LeftWeight, rep.RightWeight)
	}
	if *verbose {
		for v := 0; v < h.NumVertices(); v++ {
			side := "L"
			if p.Side(v) == partition.Right {
				side = "R"
			}
			fmt.Printf("  %s %s\n", h.VertexName(v), side)
		}
	}
}

// runRegistered invokes an algorithm from the Algorithms registry by
// name.
func runRegistered(ctx context.Context, name string, h *fasthgp.Hypergraph, cfg fasthgp.AlgoConfig) (*fasthgp.AlgoResult, error) {
	for _, a := range fasthgp.Algorithms() {
		if a.Name == name {
			return a.Run(ctx, h, cfg)
		}
	}
	return nil, fmt.Errorf("algorithm %q not in registry", name)
}

// printStats reports the engine's account of a multi-start run.
func printStats(es fasthgp.EngineStats) {
	fmt.Printf("engine: %d/%d starts, best at start %d, %d workers, wall %s, cpu %s",
		es.StartsRun, es.StartsRequested, es.BestStart, es.Parallelism,
		es.Wall.Round(time.Microsecond), es.CPU.Round(time.Microsecond))
	if es.Cancelled {
		fmt.Print(" [cancelled: best-so-far]")
	}
	fmt.Println()
	if len(es.Cuts) > 0 {
		fmt.Printf("engine: per-start cuts: %v\n", es.Cuts)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgpart:", err)
	os.Exit(1)
}
