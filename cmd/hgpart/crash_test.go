package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// crashNets is large enough that every algorithm has real work per
// start and connected so algI takes the engine path (a disconnected
// input is solved by zero-cut packing without journaling).
const crashNets = `module m0
module m1
module m2
module m3
module m4
module m5
module m6
module m7
module m8
module m9
module m10
module m11
net n0 m0 m1 m2
net n1 m2 m3
net n2 m3 m4 m5
net n3 m5 m6
net n4 m6 m7 m8
net n5 m8 m9
net n6 m9 m10 m11
net n7 m11 m0
net n8 m1 m6 m10
net n9 m4 m7
`

// crashAlgos is every registry algorithm, by its CLI name.
var crashAlgos = []string{"algI", "multilevel", "kl", "fm", "sa", "flow", "spectral", "random"}

// resultOf extracts the lines that define the partitioning outcome —
// the cut and every module's side — from hgpart's stdout.
func resultOf(t *testing.T, stdout string) string {
	t.Helper()
	cut := regexp.MustCompile(`(?m)^cutsize: .*$`).FindString(stdout)
	sides := regexp.MustCompile(`(?m)^  m\d+ [LR]$`).FindAllString(stdout, -1)
	if cut == "" || len(sides) != 12 {
		t.Fatalf("stdout missing cut or sides:\n%s", stdout)
	}
	return cut + "\n" + strings.Join(sides, "\n")
}

// startHgpart launches the re-exec'd CLI without waiting for it.
func startHgpart(t *testing.T, env []string, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(append(os.Environ(), "HGPART_MAIN=1"), env...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// TestCrashResumeIsBitForBitIdentical is the chaos test: for every
// registry algorithm, a checkpointed run is SIGKILLed mid-run — no
// defers, no atexit, exactly what a power cut or OOM kill looks like —
// and then resumed. The resumed run must report the exact cut and side
// assignment of an uninterrupted run. The assertion holds for any kill
// timing (including "the run already finished"), so the test cannot
// flake on scheduling: whatever prefix of starts survived in the
// journal, the resume completes the rest and the deterministic engine
// guarantees the same winner.
func TestCrashResumeIsBitForBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills processes")
	}
	nets := writeNetlist(t, crashNets)
	for _, algo := range crashAlgos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			common := []string{"-in", nets, "-algo", algo, "-starts", "6", "-seed", "5", "-v"}

			// Reference: one uninterrupted, uncheckpointed run.
			code, refOut, refErr := execHgpart(t, common...)
			if code != 0 {
				t.Fatalf("reference run failed: %s", refErr)
			}
			want := resultOf(t, refOut)

			// Victim: checkpointed, serialized, slowed to ~120ms per
			// start so the kill lands mid-run, then SIGKILLed.
			ckpt := filepath.Join(dir, "run.ckpt")
			victim := startHgpart(t, []string{"FASTHGP_FAULTS=latency@engine.start:*=120ms"},
				append(common, "-checkpoint", ckpt, "-parallel", "1")...)
			time.Sleep(300 * time.Millisecond)
			if err := victim.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_ = victim.Wait()

			// Resume: must exit 0 with the reference result, verified.
			args := append(common, "-checkpoint", ckpt, "-resume", "-verify", "-stats")
			code, out, stderr := execHgpart(t, args...)
			if code != 0 {
				t.Fatalf("resume failed: %s", stderr)
			}
			if got := resultOf(t, out); got != want {
				t.Errorf("resumed result differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
			}
			if !strings.Contains(out, "checkpoint: journal") {
				t.Errorf("resume did not report the journal:\n%s", out)
			}
			if !strings.Contains(out, "verified:") {
				t.Errorf("resume result not verified:\n%s", out)
			}
		})
	}
}

// TestCheckpointFlagValidation covers the flag-combination errors.
func TestCheckpointFlagValidation(t *testing.T) {
	nets := writeNetlist(t, testNets)
	cases := []struct {
		name     string
		args     []string
		inStderr string
	}{
		{"resume without checkpoint", []string{"-in", nets, "-resume"}, "-resume requires -checkpoint"},
		{"checkpoint with fallback", []string{"-in", nets, "-checkpoint", "x.ckpt", "-fallback", "fm"}, "cannot be combined"},
		{"checkpoint with k>2", []string{"-in", nets, "-checkpoint", "x.ckpt", "-k", "4"}, "bipartitioning only"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := execHgpart(t, tc.args...)
			if code != 1 {
				t.Errorf("exit code = %d, want 1", code)
			}
			if !strings.Contains(stderr, tc.inStderr) {
				t.Errorf("stderr = %q, want it to contain %q", stderr, tc.inStderr)
			}
		})
	}
}

// TestCheckpointForeignJournalRefused: resuming someone else's journal
// is an error, not a silently wrong result.
func TestCheckpointForeignJournalRefused(t *testing.T) {
	nets := writeNetlist(t, crashNets)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if code, _, stderr := execHgpart(t, "-in", nets, "-algo", "fm", "-starts", "4", "-seed", "1", "-checkpoint", ckpt); code != 0 {
		t.Fatalf("seed run failed: %s", stderr)
	}
	code, _, stderr := execHgpart(t, "-in", nets, "-algo", "fm", "-starts", "4", "-seed", "2", "-checkpoint", ckpt, "-resume")
	if code != 1 || !strings.Contains(stderr, "different run") {
		t.Errorf("foreign journal: exit %d, stderr %q", code, stderr)
	}
}

// TestCheckpointResumeSkipsCompletedStarts resumes a finished journal
// and requires the engine to re-run nothing.
func TestCheckpointResumeSkipsCompletedStarts(t *testing.T) {
	nets := writeNetlist(t, crashNets)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	args := []string{"-in", nets, "-algo", "kl", "-starts", "5", "-seed", "3", "-checkpoint", ckpt}
	if code, _, stderr := execHgpart(t, args...); code != 0 {
		t.Fatalf("first run failed: %s", stderr)
	}
	code, out, stderr := execHgpart(t, append(args, "-resume", "-stats")...)
	if code != 0 {
		t.Fatalf("resume failed: %s", stderr)
	}
	want := fmt.Sprintf("resumed %d of %d starts", 5, 5)
	if !strings.Contains(out, want) {
		t.Errorf("stdout missing %q:\n%s", want, out)
	}
	if !strings.Contains(out, "[5 start(s) resumed from the checkpoint journal]") {
		t.Errorf("-stats missing resumed marker:\n%s", out)
	}
}

// TestCrashResumeConstrainedIsBitForBitIdentical repeats the chaos test
// under the unified balance contract: ε=0.2 with m0 pinned Left and m11
// pinned Right via an hMETIS fix file. The journal binds to the
// constraint, the kill lands mid-run, and the resume must reproduce the
// uninterrupted constrained result exactly — with the verifier
// certifying the constraint on the way out.
func TestCrashResumeConstrainedIsBitForBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills processes")
	}
	nets := writeNetlist(t, crashNets)
	fixFile := filepath.Join(t.TempDir(), "pins.fix")
	fix := "0\n" + strings.Repeat("-1\n", 10) + "1\n" // m0 Left, m11 Right
	if err := os.WriteFile(fixFile, []byte(fix), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, algo := range crashAlgos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			common := []string{"-in", nets, "-algo", algo, "-starts", "6", "-seed", "5",
				"-epsilon", "0.2", "-fixed", fixFile, "-v"}

			code, refOut, refErr := execHgpart(t, common...)
			if code != 0 {
				t.Fatalf("reference run failed: %s", refErr)
			}
			want := resultOf(t, refOut)
			if !strings.Contains(refOut, "m0 L") || !strings.Contains(refOut, "m11 R") {
				t.Fatalf("reference run ignored the pins:\n%s", refOut)
			}

			ckpt := filepath.Join(dir, "run.ckpt")
			victim := startHgpart(t, []string{"FASTHGP_FAULTS=latency@engine.start:*=120ms"},
				append(common, "-checkpoint", ckpt, "-parallel", "1")...)
			time.Sleep(300 * time.Millisecond)
			if err := victim.Process.Kill(); err != nil {
				t.Fatal(err)
			}
			_ = victim.Wait()

			args := append(common, "-checkpoint", ckpt, "-resume", "-verify", "-stats")
			code, out, stderr := execHgpart(t, args...)
			if code != 0 {
				t.Fatalf("resume failed: %s", stderr)
			}
			if got := resultOf(t, out); got != want {
				t.Errorf("resumed constrained result differs:\ngot:\n%s\nwant:\n%s", got, want)
			}
			if !strings.Contains(out, "[constraint satisfied]") {
				t.Errorf("resume result not certified against the constraint:\n%s", out)
			}
		})
	}
}

// TestCheckpointConstraintMismatchRefused: a journal written under one
// balance contract refuses to resume under another.
func TestCheckpointConstraintMismatchRefused(t *testing.T) {
	nets := writeNetlist(t, crashNets)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	common := []string{"-in", nets, "-algo", "fm", "-starts", "4", "-seed", "1", "-checkpoint", ckpt}
	if code, _, stderr := execHgpart(t, append(common, "-epsilon", "0.1")...); code != 0 {
		t.Fatalf("seed run failed: %s", stderr)
	}
	code, _, stderr := execHgpart(t, append(common, "-epsilon", "0.3", "-resume")...)
	if code != 1 || !strings.Contains(stderr, "different run") {
		t.Errorf("constraint-mismatched journal: exit %d, stderr %q", code, stderr)
	}
}
