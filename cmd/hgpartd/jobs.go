package main

// In-memory job table behind GET /jobs/{id}. Every accepted partition
// request gets a job id; the table tracks it from accepted through
// done/failed, including jobs replayed from the WAL at boot (whose
// clients are long gone) and jobs re-enqueued by crash recovery. The
// table is bounded: once it holds maxJobs entries, the oldest finished
// jobs are evicted first, so a long-lived daemon cannot leak memory.

import (
	"sync"
	"time"
)

// maxJobs bounds the table; eviction removes oldest terminal entries.
const maxJobs = 4096

// jobInfo is one job's state, served verbatim as JSON by /jobs/{id}.
type jobInfo struct {
	ID       string `json:"id"`
	Status   string `json:"status"` // accepted | running | done | failed | requeued
	Accepted string `json:"accepted"`
	Requeued bool   `json:"requeued,omitempty"` // re-enqueued by crash recovery
	Cut      int    `json:"cut,omitempty"`
	TierName string `json:"tier_name,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (j *jobInfo) terminal() bool { return j.Status == "done" || j.Status == "failed" }

// jobTable is the bounded, concurrency-safe job registry.
type jobTable struct {
	mu    sync.Mutex
	jobs  map[string]*jobInfo
	order []string // insertion order, for eviction
	seq   int64
}

func newJobTable() *jobTable {
	return &jobTable{jobs: make(map[string]*jobInfo)}
}

// continueFrom advances the id sequence past n (WAL replay passes the
// highest id the dead process issued, so ids never collide).
func (t *jobTable) continueFrom(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > t.seq {
		t.seq = n
	}
}

// create registers a fresh job and returns its id.
func (t *jobTable) create() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := jobID(t.seq)
	t.insertLocked(&jobInfo{ID: id, Status: "accepted", Accepted: time.Now().UTC().Format(time.RFC3339)})
	return id
}

// restore registers a job replayed from the WAL in the given state.
func (t *jobTable) restore(j jobInfo) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.jobs[j.ID]; ok {
		*existing = j
		return
	}
	t.insertLocked(&j)
}

func (t *jobTable) insertLocked(j *jobInfo) {
	for len(t.order) >= maxJobs {
		evicted := false
		for i, id := range t.order {
			if t.jobs[id].terminal() {
				delete(t.jobs, id)
				t.order = append(t.order[:i], t.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted { // everything in flight; evict the oldest anyway
			delete(t.jobs, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.jobs[j.ID] = j
	t.order = append(t.order, j.ID)
}

// update mutates a job's state if it is still tracked.
func (t *jobTable) update(id string, f func(*jobInfo)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j, ok := t.jobs[id]; ok {
		f(j)
	}
}

// get returns a copy of the job's state.
func (t *jobTable) get(id string) (jobInfo, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return jobInfo{}, false
	}
	return *j, true
}

// counts tallies jobs by status (for /healthz and /stats).
func (t *jobTable) counts() map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int)
	for _, j := range t.jobs {
		out[j.Status]++
	}
	return out
}
