package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fasthgp/internal/fleet"
)

// waitForJob polls the job table until the job reaches a terminal
// state or the deadline passes.
func waitForJob(t *testing.T, s *server, id string) fleet.JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := s.jobs.Get(id); ok && j.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	j, _ := s.jobs.Get(id)
	t.Fatalf("job %s never finished: %+v", id, j)
	return fleet.JobInfo{}
}

func TestPartitionReturnsJobID(t *testing.T) {
	s := testServer()
	h := s.handler()
	rec := post(t, h, "/partition?seed=3", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp partitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.JobID == "" {
		t.Fatal("response has no job_id")
	}
	jrec := httptest.NewRecorder()
	h.ServeHTTP(jrec, httptest.NewRequest(http.MethodGet, "/jobs/"+resp.JobID, nil))
	if jrec.Code != http.StatusOK {
		t.Fatalf("GET /jobs/%s = %d, body %s", resp.JobID, jrec.Code, jrec.Body)
	}
	var job fleet.JobInfo
	if err := json.Unmarshal(jrec.Body.Bytes(), &job); err != nil {
		t.Fatal(err)
	}
	if job.Status != "done" || job.Cut != resp.Cut || job.TierName != resp.TierName {
		t.Errorf("job = %+v, want done with cut %d tier %s", job, resp.Cut, resp.TierName)
	}
}

func TestJobsUnknown404(t *testing.T) {
	h := testServer().handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/jobs/j999", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/jobs/", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty job id = %d, want 400", rec.Code)
	}
}

// TestWALPersistsAcrossRestart is the daemon-side crash drill, run
// in-process: server A journals a request to the WAL; server B (a new
// process in all but pid) replays the WAL and must answer GET /jobs/{id}
// for A's job.
func TestWALPersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")

	sa := testServer()
	w, maxSeq, replayed, pending, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	sa.attachWAL(w, maxSeq, replayed)
	sa.requeue(pending)
	rec := post(t, sa.handler(), "/partition?seed=3", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp partitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	w.close() // crash; no graceful anything beyond the fsyncs already done

	sb := testServer()
	w2, maxSeq2, replayed2, pending2, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	sb.attachWAL(w2, maxSeq2, replayed2)
	if len(pending2) != 0 {
		t.Fatalf("finished job came back as pending: %+v", pending2)
	}
	job, ok := sb.jobs.Get(resp.JobID)
	if !ok {
		t.Fatalf("restarted daemon lost job %s", resp.JobID)
	}
	if job.Status != "done" || job.Cut != resp.Cut {
		t.Errorf("replayed job = %+v, want done with cut %d", job, resp.Cut)
	}

	// Job ids keep counting where the dead process stopped.
	if id := sb.jobs.Create(); fleet.JobSeq(id) <= fleet.JobSeq(resp.JobID) {
		t.Errorf("new job id %s does not continue after %s", id, resp.JobID)
	}
}

// TestWALReenqueuesInterruptedJob: a WAL holding an accepted record
// with no outcome — exactly what a kill -9 mid-request leaves — must
// cause the next boot to re-run the job to completion.
func TestWALReenqueuesInterruptedJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, _, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(walRecord{Type: "accepted", JobID: "j7",
		Query: "seed=3&starts=2", Netlist: testNets}); err != nil {
		t.Fatal(err)
	}
	w.close() // the "crash": accepted journaled, outcome never written

	s := testServer()
	w2, maxSeq, replayed, pending, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(pending) != 1 || pending[0].JobID != "j7" {
		t.Fatalf("pending = %+v, want the interrupted j7", pending)
	}
	s.attachWAL(w2, maxSeq, replayed)
	s.requeue(pending)

	job := waitForJob(t, s, "j7")
	if job.Status != "done" || !job.Requeued || job.Cut < 1 {
		t.Fatalf("recovered job = %+v, want done+requeued with a real cut", job)
	}

	// The outcome is durable: a third boot sees nothing left to do.
	w3, _, _, pending3, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.close()
	if len(pending3) != 0 {
		t.Fatalf("job still pending after recovery run: %+v", pending3)
	}
}

// TestWALRecoveredJobFailureIsJournaled: a recovered job whose netlist
// no longer parses (schema drift, truncation) must fail loudly in the
// job table, not wedge the queue.
func TestWALRecoveredJobFailureIsJournaled(t *testing.T) {
	s := testServer()
	path := filepath.Join(t.TempDir(), "wal")
	w, _, _, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	s.attachWAL(w, 0, nil)
	s.requeue([]pendingJob{{JobID: "j3", Netlist: "frobnicate\n"}})
	job := waitForJob(t, s, "j3")
	if job.Status != "failed" || job.Error == "" {
		t.Fatalf("job = %+v, want failed with an error", job)
	}
	if n := s.inFlight.Load(); n != 0 {
		t.Errorf("inFlight = %d after recovery, want 0", n)
	}
}

// TestMemoryShedding503: with the watermark set below any real heap,
// new partition requests are shed with a retryable 503 and /healthz
// reports degraded — while still answering HTTP 200 (liveness).
func TestMemoryShedding503(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.maxHeap = 1 }) // 1 byte: always over
	h := s.handler()
	rec := post(t, h, "/partition", testNets)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if s.shed503.Load() != 1 {
		t.Errorf("shed counter = %d, want 1", s.shed503.Load())
	}

	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200 even when degraded", hrec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" {
		t.Errorf("healthz status = %v, want degraded; body %s", health["status"], hrec.Body)
	}
}

// TestHealthzReportsBreakerStates: /healthz lists per-tier breaker
// states and degrades when one is open.
func TestHealthzReportsBreakerStates(t *testing.T) {
	s := testServer(func(c *serverConfig) {
		c.breakerThreshold = 1
		c.breakerCooldown = time.Hour
	})
	h := s.handler()
	s.breakers.For("fm").Allow()
	s.breakers.For("fm").Record(false) // trip it

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	var health struct {
		Status   string            `json:"status"`
		Breakers map[string]string `json:"breakers"`
		Reasons  []string          `json:"degraded_reasons"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Breakers["fm"] != "open" {
		t.Errorf("healthz = %+v, want degraded with fm open", health)
	}
	if len(health.Reasons) == 0 || !strings.Contains(health.Reasons[0], "fm") {
		t.Errorf("degraded_reasons = %v, want the fm breaker named", health.Reasons)
	}
}

// TestHealthzHealthyShape: the healthy payload carries the fields CI
// and dashboards key on.
func TestHealthzHealthyShape(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.breakerThreshold = 3 })
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("status = %v, want ok", health["status"])
	}
	for _, key := range []string{"queue_depth", "queue_capacity", "jobs", "uptime_ms", "wal"} {
		if _, ok := health[key]; !ok {
			t.Errorf("healthz missing %q: %s", key, rec.Body)
		}
	}
}

// TestBreakerSkipsTierAcrossRequests: a tier that fails on every
// request trips its breaker; later requests skip it outright and are
// answered by the fallback without burning attempts on the broken tier.
func TestBreakerSkipsTierAcrossRequests(t *testing.T) {
	s := testServer(func(c *serverConfig) {
		c.breakerThreshold = 1
		c.breakerCooldown = time.Hour
		c.chain = []string{"multilevel", "fm"}
	})
	s.breakers.For("multilevel").Allow()
	s.breakers.For("multilevel").Record(false) // open

	rec := post(t, s.handler(), "/partition?seed=3", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp partitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TierName != "fm" || !resp.Degraded {
		t.Errorf("tier = %s degraded = %v, want fm/true (multilevel skipped by its breaker)", resp.TierName, resp.Degraded)
	}
}
