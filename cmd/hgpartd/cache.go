package main

// Result cache: POST /partition is a pure function of (netlist,
// effective options) — the engine is deterministic per seed regardless
// of parallelism — so identical resubmissions (CI pipelines re-running
// a flow, retry storms after a timeout) can be answered from memory
// without burning a multi-start run. Keys combine the FNV-1a hypergraph
// fingerprint already used by crash-safe checkpointing with a canonical
// rendering of the options that affect the result; entries are bounded
// by an LRU list. Degraded responses (a fallback tier answered because
// the budget expired) are never cached: a retry deserves the full
// chain. Hits return the originally computed body verbatim — including
// its job_id — and are not re-journaled to the WAL.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"fasthgp"
	"fasthgp/internal/checkpoint"
)

// cacheKey identifies one (netlist, options) request class.
type cacheKey struct {
	// fingerprint is checkpoint.HashHypergraph over the parsed input —
	// structure, pins, and weights, independent of wire format.
	fingerprint uint64
	// opts is the canonical option string from portfolioOptions:
	// chain, starts, seed and budget (parallelism is excluded — it
	// never affects the result, only wall time).
	opts string
}

// fingerprintFor computes the cache fingerprint of a parsed netlist.
func fingerprintFor(h *fasthgp.Hypergraph) uint64 {
	return checkpoint.HashHypergraph(h)
}

// resultCache is a mutex-guarded LRU of successful partition responses.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	byKey map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  cacheKey
	resp partitionResponse
}

// newResultCache returns an LRU bounded to capacity entries, or nil
// (caching disabled) when capacity <= 0.
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap:   capacity,
		order: list.New(),
		byKey: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached response for k, bumping it to most recent.
func (c *resultCache) get(k cacheKey) (partitionResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		c.misses.Add(1)
		return partitionResponse{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).resp, true
}

// put inserts (or refreshes) k's response, evicting the least recently
// used entry past capacity.
func (c *resultCache) put(k cacheKey, resp partitionResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&cacheEntry{key: k, resp: resp})
	if c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
}

// snapshot returns the counters surfaced on /healthz and /stats.
func (c *resultCache) snapshot() map[string]any {
	c.mu.Lock()
	size := c.order.Len()
	c.mu.Unlock()
	return map[string]any{
		"capacity": c.cap,
		"size":     size,
		"hits":     c.hits.Load(),
		"misses":   c.misses.Load(),
	}
}
