package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"fasthgp/internal/faultinject"
)

const testNets = `module a
module b
module c
module d
module e
module f
net n1 a b c
net n2 c d
net n3 d e f
net n4 b e
`

func testServer(mutate ...func(*serverConfig)) *server {
	cfg := serverConfig{
		maxBody:    1 << 20,
		queue:      2,
		reqTimeout: 30 * time.Second,
		starts:     2,
		seed:       1,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	return newServer(cfg)
}

func post(t *testing.T, h http.Handler, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	rec := httptest.NewRecorder()
	testServer().handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
}

func TestPartitionValidNetlist(t *testing.T) {
	s := testServer()
	rec := post(t, s.handler(), "/partition?seed=3", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp partitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Modules != 6 || resp.Nets != 4 {
		t.Errorf("modules/nets = %d/%d, want 6/4", resp.Modules, resp.Nets)
	}
	if len(resp.Assignment) != 6 {
		t.Errorf("assignment length = %d, want 6", len(resp.Assignment))
	}
	if resp.Degraded || resp.Tier != 0 {
		t.Errorf("healthy request degraded: tier %d (%s)", resp.Tier, resp.TierName)
	}
	if resp.Cut < 1 {
		t.Errorf("cut = %d on a connected netlist", resp.Cut)
	}
}

func TestMalformedNetlist400(t *testing.T) {
	s := testServer()
	rec := post(t, s.handler(), "/partition", "module a\nfrobnicate a b\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body)
	}
	if s.bad400.Load() != 1 {
		t.Errorf("bad400 counter = %d, want 1", s.bad400.Load())
	}
}

func TestOversizedBody413(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.maxBody = 64 })
	rec := post(t, s.handler(), "/partition", testNets+strings.Repeat("# padding\n", 50))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413; body %s", rec.Code, rec.Body)
	}
	if s.tooLarge.Load() != 1 {
		t.Errorf("tooLarge counter = %d, want 1", s.tooLarge.Load())
	}
}

// TestQueueFull429: with every admission token held, a new request is
// rejected immediately with Retry-After rather than queued.
func TestQueueFull429(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.queue = 1 })
	s.sem <- struct{}{} // occupy the only slot, as an in-flight request would
	rec := post(t, s.handler(), "/partition", testNets)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	<-s.sem
	if rec = post(t, s.handler(), "/partition", testNets); rec.Code != http.StatusOK {
		t.Fatalf("freed queue still rejects: %d", rec.Code)
	}
}

// TestInjectedPanicBecomes500: a forced panic inside request handling
// is caught by the middleware — 500 for that request, counter bumped,
// and the very next request succeeds.
func TestInjectedPanicBecomes500(t *testing.T) {
	plan, err := faultinject.ParseSpec("panic@hgpartd.request:0")
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Install(plan)()
	s := testServer()
	rec := post(t, s.handler(), "/partition", testNets)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", rec.Code, rec.Body)
	}
	if s.recovered.Load() != 1 {
		t.Errorf("panics recovered = %d, want 1", s.recovered.Load())
	}
	if rec = post(t, s.handler(), "/partition", testNets); rec.Code != http.StatusOK {
		t.Fatalf("request after recovered panic = %d, want 200", rec.Code)
	}
	if n := s.inFlight.Load(); n != 0 {
		t.Errorf("inFlight = %d after panic, want 0 (leaked semaphore?)", n)
	}
}

func TestPerRequestChainOverride(t *testing.T) {
	s := testServer()
	rec := post(t, s.handler(), "/partition?chain=core&starts=2", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp partitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TierName != "algo1" {
		t.Errorf("tier name = %s, want algo1 (the 'core' alias)", resp.TierName)
	}
}

func TestBadQueryParams400(t *testing.T) {
	s := testServer()
	for _, url := range []string{
		"/partition?starts=zero", "/partition?seed=x",
		"/partition?budget=-1s", "/partition?format=xml",
		"/partition?chain=quantum",
	} {
		if rec := post(t, s.handler(), url, testNets); rec.Code != http.StatusBadRequest &&
			rec.Code != http.StatusInternalServerError {
			t.Errorf("%s: status = %d, want 4xx/5xx", url, rec.Code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	rec := httptest.NewRecorder()
	testServer().handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/partition", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /partition = %d, want 405", rec.Code)
	}
}

func TestStatsCounters(t *testing.T) {
	s := testServer()
	h := s.handler()
	post(t, h, "/partition", testNets)
	post(t, h, "/partition", "frobnicate\n")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["requests"].(float64) != 2 || stats["ok"].(float64) != 1 || stats["bad_request"].(float64) != 1 {
		t.Errorf("stats = %v, want requests 2, ok 1, bad_request 1", stats)
	}
}

// TestGracefulShutdown boots the real daemon on an ephemeral port,
// serves one request, sends SIGTERM, and expects a clean exit 0 drain.
func TestGracefulShutdown(t *testing.T) {
	stdout := &syncBuffer{}
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0", "-starts", "2"}, stdout, stdout) }()

	addr := ""
	for i := 0; i < 200 && addr == ""; i++ {
		time.Sleep(10 * time.Millisecond)
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "hgpartd: listening on "); ok {
				addr = rest
			}
		}
	}
	if addr == "" {
		t.Fatalf("daemon never printed its address; output: %q", stdout.String())
	}
	resp, err := http.Post("http://"+addr+"/partition?starts=2", "text/plain", strings.NewReader(testNets))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live request = %d, want 200", resp.StatusCode)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0; output: %q", code, stdout.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
	if !strings.Contains(stdout.String(), "drained") {
		t.Errorf("no drain message in output: %q", stdout.String())
	}
}

// syncBuffer is a mutex-guarded buffer: the daemon goroutine writes
// while the test polls String.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDrainRejectsNewJobs: once drain starts, new partition requests
// answer 503 with a Retry-After hint and are never accepted (no job id,
// no WAL record), while probes and job lookups keep working.
func TestDrainRejectsNewJobs(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.drainTimeout = 7 * time.Second })
	h := s.handler()
	s.startDraining()
	rec := post(t, h, "/partition", testNets)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want %q (the drain grace in seconds)", got, "7")
	}
	if counts := s.jobs.Counts(); len(counts) != 0 {
		t.Errorf("draining daemon accepted a job: %v", counts)
	}
	// The health probe still answers, and reports the drain.
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", hrec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(hrec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" || health["draining"] != true {
		t.Errorf("healthz during drain = status %v, draining %v; want degraded/true",
			health["status"], health["draining"])
	}
}

// TestDeadlineHeader: a propagated X-Request-Deadline below the
// configured -req-timeout caps the request budget, and one already in
// the past is refused with 504 before the job is accepted.
func TestDeadlineHeader(t *testing.T) {
	s := testServer()
	h := s.handler()

	req := httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(testNets))
	req.Header.Set("X-Request-Deadline", strconv.FormatInt(time.Now().Add(10*time.Second).UnixMilli(), 10))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status with live deadline = %d, body %s", rec.Code, rec.Body)
	}

	req = httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(testNets))
	req.Header.Set("X-Request-Deadline", strconv.FormatInt(time.Now().Add(-time.Second).UnixMilli(), 10))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status with expired deadline = %d, want 504; body %s", rec.Code, rec.Body)
	}
	if counts := s.jobs.Counts(); counts["accepted"]+counts["running"]+counts["failed"] != 0 && len(counts) != 1 {
		t.Errorf("expired-deadline request left job state: %v", counts)
	}

	// A malformed header never breaks the request: fall back to the
	// configured timeout.
	req = httptest.NewRequest(http.MethodPost, "/partition", strings.NewReader(testNets))
	req.Header.Set("X-Request-Deadline", "not-a-number")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status with malformed deadline = %d, body %s", rec.Code, rec.Body)
	}
}

// TestRequestTimeoutDerivation pins the header-capping arithmetic.
func TestRequestTimeoutDerivation(t *testing.T) {
	s := testServer() // reqTimeout 30s
	mk := func(hdr string) *http.Request {
		r := httptest.NewRequest(http.MethodPost, "/partition", nil)
		if hdr != "" {
			r.Header.Set("X-Request-Deadline", hdr)
		}
		return r
	}
	if d, expired := s.requestTimeout(mk("")); expired || d != 30*time.Second {
		t.Errorf("no header: (%v, %v), want (30s, false)", d, expired)
	}
	far := strconv.FormatInt(time.Now().Add(time.Hour).UnixMilli(), 10)
	if d, expired := s.requestTimeout(mk(far)); expired || d != 30*time.Second {
		t.Errorf("far deadline must not raise the cap: (%v, %v)", d, expired)
	}
	near := strconv.FormatInt(time.Now().Add(5*time.Second).UnixMilli(), 10)
	if d, expired := s.requestTimeout(mk(near)); expired || d > 5*time.Second || d < 4*time.Second {
		t.Errorf("near deadline must cap the budget: (%v, %v)", d, expired)
	}
	past := strconv.FormatInt(time.Now().Add(-time.Minute).UnixMilli(), 10)
	if _, expired := s.requestTimeout(mk(past)); !expired {
		t.Error("past deadline not reported expired")
	}
}

// TestWALErrorSurfacesOnHealthz: a failing WAL append degrades the
// health report and carries the underlying error text.
func TestWALErrorSurfacesOnHealthz(t *testing.T) {
	s := testServer()
	s.walErrs.Add(2)
	s.walLastErr.Store("write wal: disk full")
	s.wal = &wal{} // non-nil so healthz reports the WAL section
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" {
		t.Errorf("status = %v, want degraded", health["status"])
	}
	if health["wal_last_error"] != "write wal: disk full" {
		t.Errorf("wal_last_error = %v", health["wal_last_error"])
	}
	reasons, _ := health["degraded_reasons"].([]any)
	found := false
	for _, r := range reasons {
		if rs, ok := r.(string); ok && strings.Contains(rs, "disk full") {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded_reasons %v does not carry the WAL error", reasons)
	}
}
