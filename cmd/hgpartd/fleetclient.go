package main

// Worker-side fleet membership: with -coordinator set, the daemon
// registers itself with an hgpartcoord coordinator and keeps the
// registration alive with periodic heartbeats. Registration retries
// with jittered backoff until the coordinator is reachable, so boot
// order never matters; a heartbeat answered 404 (the coordinator
// restarted, or ejected us for silence) triggers re-registration, so
// a worker rejoins the fleet without manual intervention. At drain the
// worker deregisters first, so the coordinator routes away before the
// listener stops accepting.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/fleet"
)

// fleetClient maintains one worker's registration with a coordinator.
type fleetClient struct {
	coordinator string // coordinator base URL, e.g. http://127.0.0.1:7070
	id          string
	advertise   string        // address the coordinator should forward to
	interval    time.Duration // heartbeat period (0 = coordinator-provided)
	stdout      io.Writer

	client *http.Client
	beats  atomic.Int64 // fault-injection index for fleet.heartbeat
	cancel context.CancelFunc
	done   chan struct{}
}

func newFleetClient(coordinator, id, advertise string, interval time.Duration, stdout io.Writer) *fleetClient {
	return &fleetClient{
		coordinator: coordinator,
		id:          id,
		advertise:   advertise,
		interval:    interval,
		stdout:      stdout,
		client:      &http.Client{Timeout: 5 * time.Second},
		done:        make(chan struct{}),
	}
}

// start launches the register-then-heartbeat loop in a goroutine.
func (c *fleetClient) start() {
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	go c.run(ctx)
}

// stop deregisters (best-effort) and halts the heartbeat loop. Called
// at the start of drain, before the listener stops accepting.
func (c *fleetClient) stop() {
	c.cancel()
	<-c.done
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = c.post(ctx, "/deregister", map[string]any{"id": c.id}, nil)
	fmt.Fprintf(c.stdout, "hgpartd: deregistered %s from %s\n", c.id, c.coordinator)
}

func (c *fleetClient) run(ctx context.Context) {
	defer close(c.done)
	backoff := fleet.BackoffConfig{Base: 250 * time.Millisecond, Cap: 5 * time.Second, Seed: seedFrom(c.id)}
	for {
		interval, err := c.register(ctx, backoff)
		if err != nil {
			return // ctx canceled
		}
		fmt.Fprintf(c.stdout, "hgpartd: registered %s (%s) with %s, heartbeating every %s\n",
			c.id, c.advertise, c.coordinator, interval)
		if !c.heartbeatLoop(ctx, interval) {
			return // ctx canceled
		}
		// heartbeatLoop returned true: the coordinator no longer knows
		// us (restart or silence ejection) — loop back and re-register.
		fmt.Fprintf(c.stdout, "hgpartd: coordinator lost registration for %s, re-registering\n", c.id)
	}
}

// register announces the worker, retrying with jittered backoff until
// it succeeds or ctx is canceled. Returns the heartbeat interval: the
// -heartbeat-interval flag if set, else the coordinator's answer.
func (c *fleetClient) register(ctx context.Context, backoff fleet.BackoffConfig) (time.Duration, error) {
	for attempt := 0; ; attempt++ {
		var resp struct {
			HeartbeatIntervalMS int64 `json:"heartbeat_interval_ms"`
		}
		err := c.post(ctx, "/register", map[string]any{"id": c.id, "addr": c.advertise}, &resp)
		if err == nil {
			interval := c.interval
			if interval <= 0 {
				interval = time.Duration(resp.HeartbeatIntervalMS) * time.Millisecond
			}
			if interval <= 0 {
				interval = time.Second
			}
			return interval, nil
		}
		if !backoff.Sleep(ctx, attempt) {
			return 0, ctx.Err()
		}
	}
}

// heartbeatLoop beats until ctx is canceled (returns false) or the
// coordinator answers 404 (returns true: re-register). Transport
// errors are tolerated silently — the coordinator's silence ejection
// is the arbiter, and the next successful beat rejoins us.
func (c *fleetClient) heartbeatLoop(ctx context.Context, interval time.Duration) (reregister bool) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return false
		case <-ticker.C:
		}
		idx := int(c.beats.Add(1) - 1)
		if faultinject.ShouldDrop(faultinject.PointFleetHeartbeat, idx) {
			continue // beat lost on the wire
		}
		err := c.post(ctx, "/heartbeat", map[string]any{"id": c.id}, nil)
		if err == errUnknownWorker {
			return true
		}
	}
}

// errUnknownWorker marks a 404 from /heartbeat: the coordinator does
// not know this worker id and it must re-register.
var errUnknownWorker = fmt.Errorf("coordinator does not know this worker")

// post sends one JSON request to the coordinator; out, when non-nil,
// receives the decoded 2xx body. A 404 maps to errUnknownWorker.
func (c *fleetClient) post(ctx context.Context, path string, body map[string]any, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return errUnknownWorker
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// seedFrom derives a stable backoff seed from the worker id, so two
// workers booting together do not retry registration in lockstep.
func seedFrom(id string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int64(h)
}
