package main

// Load-derived Retry-After hints, the byzantine fault mode, and the
// WAL scrubber.
//
// Retry-After: a fixed hint synchronizes every rejected client (and
// every coordinator backoff fronting this worker) onto the same retry
// instant — the herd that overloaded the daemon re-arrives intact. The
// hint is therefore the nominal floor plus deterministic jitter whose
// spread grows with queue occupancy: a briefly busy daemon spreads
// retries over a second or two, a saturated one over several.
//
// Byzantine mode: a corrupt rule on hgpartd.request makes the daemon
// *lie* on the wire — the claimed cut in the response is off by one
// while the computed result, the job table, the WAL, and the result
// cache all stay honest. This is the chaos-drill stand-in for a worker
// with bad RAM or a miscompiled kernel: every layer below the HTTP
// response is intact, so only end-to-end answer verification (the
// coordinator's oracle) can catch it.
//
// Scrub: with a WAL attached, a background pass re-walks its CRC
// frames on a timer, detecting bit rot while the process is healthy
// rather than at the next crash's replay, and degrades /healthz.

import (
	"net/http"
	"strconv"
	"time"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/faultinject"
)

// retryAfterHint renders a Retry-After value: nominal seconds at the
// floor, plus jitter in [0, spread] where spread climbs from 1 to 4 as
// the admission queue fills.
func (s *server) retryAfterHint(nominal int) string {
	spread := 1 + 3*len(s.sem)/s.cfg.queue
	x := splitmix64(s.retrySalt.Add(1))
	return strconv.Itoa(nominal + int(x%uint64(spread+1)))
}

// splitmix64 is the SplitMix64 output mixer — a cheap stateless bijection
// good enough to decorrelate retry hints.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// writePartition writes one /partition 200, applying the byzantine
// fault mode to a copy of the response — the caller's value (and any
// cache entry holding it) stays honest.
func (s *server) writePartition(w http.ResponseWriter, resp partitionResponse, reqIdx int) {
	if faultinject.ShouldCorrupt(faultinject.PointServeRequest, reqIdx) {
		resp.Cut++ // the lie: everything below the response is intact
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// scrub re-walks the WAL's CRC frames read-only, serialized against
// appends so an in-flight frame never reads as torn.
func (w *wal) scrub() (checkpoint.ScrubReport, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return checkpoint.ScrubFile(w.j.Path())
}

// runScrub performs one scrub pass over the WAL and publishes the
// result. No-op without a WAL.
func (s *server) runScrub() {
	if s.wal == nil {
		return
	}
	rep, err := s.wal.scrub()
	st := &checkpoint.ScrubStatus{Report: rep, At: time.Now()}
	if err != nil {
		st.Err = err.Error()
	}
	s.lastScrub.Store(st)
}

// scrubLoop runs runScrub on a timer until stop closes.
func (s *server) scrubLoop(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.runScrub()
		}
	}
}
