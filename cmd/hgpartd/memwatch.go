package main

// Memory-aware load shedding. Partition requests allocate in proportion
// to the netlist (the flow tier alone builds a graph with two nodes per
// net), so a daemon near its container's memory limit is better off
// refusing new work with a retryable 503 than being OOM-killed with
// every in-flight request lost. The watcher samples the runtime's live
// heap gauge, cached briefly so the per-request cost is a clock read,
// and handlePartition sheds while the heap sits above the watermark.

import (
	"runtime/metrics"
	"sync"
	"time"
)

// heapMetric is the runtime/metrics gauge of live heap bytes: memory
// occupied by objects, the thing that grows with admitted requests.
const heapMetric = "/memory/classes/heap/objects:bytes"

// memSampleTTL is how stale a cached heap sample may be. Shedding is a
// watermark, not an exact limit; 100ms of staleness costs accuracy
// bounded by one sampling interval of allocation, and keeps the hot
// path off the metrics runtime.
const memSampleTTL = 100 * time.Millisecond

type memWatcher struct {
	limit uint64 // shed above this many live heap bytes

	mu      sync.Mutex
	sampled time.Time
	heap    uint64
}

// newMemWatcher returns a watcher shedding above limit bytes, or nil
// when limit is 0 (shedding disabled).
func newMemWatcher(limit uint64) *memWatcher {
	if limit == 0 {
		return nil
	}
	return &memWatcher{limit: limit}
}

// heapBytes returns the live heap size, at most memSampleTTL stale.
func (m *memWatcher) heapBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.sampled) < memSampleTTL {
		return m.heap
	}
	sample := []metrics.Sample{{Name: heapMetric}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		m.heap = sample[0].Value.Uint64()
	}
	m.sampled = time.Now()
	return m.heap
}

// shouldShed reports whether the heap is above the watermark.
func (m *memWatcher) shouldShed() bool {
	return m.heapBytes() > m.limit
}
