package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fasthgp"
	"fasthgp/internal/faultinject"
	"fasthgp/internal/partition"
)

// serverConfig is the daemon's tunable surface, set by flags in main.
type serverConfig struct {
	maxBody      int64         // request-body cap; beyond it the request is 413
	queue        int           // concurrent partition requests; beyond it 429
	reqTimeout   time.Duration // per-request wall cap
	chain        []string      // default fallback chain (empty = library default)
	starts       int           // default multi-start count per tier
	seed         int64         // default seed
	budget       time.Duration // default portfolio budget (0 = reqTimeout)
	parallelism  int
	drainTimeout time.Duration // SIGTERM drain grace
}

// server carries the daemon state: the admission semaphore and the
// atomic counters behind GET /stats.
type server struct {
	cfg   serverConfig
	sem   chan struct{} // admission tokens; full queue = 429
	begin time.Time

	requests   atomic.Int64 // partition requests admitted or rejected
	inFlight   atomic.Int64
	ok200      atomic.Int64
	bad400     atomic.Int64
	tooLarge   atomic.Int64 // 413
	busy429    atomic.Int64
	failed500  atomic.Int64
	degraded   atomic.Int64 // 200s answered by a fallback tier
	recovered  atomic.Int64 // panics converted to 500 by the middleware
	reqCounter atomic.Int64 // fault-injection index for hgpartd.request
}

func newServer(cfg serverConfig) *server {
	if cfg.queue < 1 {
		cfg.queue = 1
	}
	return &server{cfg: cfg, sem: make(chan struct{}, cfg.queue), begin: time.Now()}
}

// handler builds the route table, every route behind the panic-recovery
// middleware: a panic anywhere in request handling becomes a 500 for
// that request and a counter bump, never a dead daemon.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/partition", s.handlePartition)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return s.recoverMiddleware(mux)
}

func (s *server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.recovered.Add(1)
				s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// partitionResponse is the JSON body of a successful POST /partition.
type partitionResponse struct {
	Modules    int    `json:"modules"`
	Nets       int    `json:"nets"`
	Cut        int    `json:"cut"`
	Tier       int    `json:"tier"`
	TierName   string `json:"tier_name"`
	Degraded   bool   `json:"degraded"`
	Assignment []int  `json:"assignment"` // side of module v: 0 = left, 1 = right
	WallMS     int64  `json:"wall_ms"`
}

func (s *server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST a netlist body to /partition")
		return
	}
	s.requests.Add(1)
	// Admission control: a full queue answers 429 immediately rather
	// than stacking goroutines until memory runs out.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, "work queue full; retry later")
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	faultinject.Fire(faultinject.PointServeRequest, int(s.reqCounter.Add(1)-1))

	// The body is capped before parsing; MaxBytesReader makes the
	// reader fail once cfg.maxBody is exceeded, which we map to 413
	// (oversized) as distinct from 400 (malformed).
	body := http.MaxBytesReader(w, r.Body, s.cfg.maxBody)
	var h *fasthgp.Hypergraph
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "", "nets":
		h, err = fasthgp.ReadNetlist(body)
	case "hgr":
		h, err = fasthgp.ReadHMetis(body)
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q", format))
		return
	}
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	opts, err := s.portfolioOptions(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.reqTimeout)
	defer cancel()
	start := time.Now()
	res, err := fasthgp.PartitionPortfolio(ctx, h, opts...)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("partition failed: %v", err))
		return
	}
	if res.Degraded {
		s.degraded.Add(1)
	}
	assignment := make([]int, h.NumVertices())
	for v := range assignment {
		if res.Partition.Side(v) == partition.Right {
			assignment[v] = 1
		}
	}
	s.writeJSON(w, http.StatusOK, partitionResponse{
		Modules:    h.NumVertices(),
		Nets:       h.NumEdges(),
		Cut:        res.CutSize,
		Tier:       res.Tier,
		TierName:   res.TierName,
		Degraded:   res.Degraded,
		Assignment: assignment,
		WallMS:     time.Since(start).Milliseconds(),
	})
}

// portfolioOptions merges per-request query parameters over the
// daemon's configured defaults.
func (s *server) portfolioOptions(r *http.Request) ([]fasthgp.PortfolioOption, error) {
	q := r.URL.Query()
	chain, starts, seed, budget := s.cfg.chain, s.cfg.starts, s.cfg.seed, s.cfg.budget
	if v := q.Get("chain"); v != "" {
		chain = strings.Split(v, ",")
	}
	if v := q.Get("starts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad starts %q", v)
		}
		starts = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", v)
		}
		seed = n
	}
	if v := q.Get("budget"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, fmt.Errorf("bad budget %q", v)
		}
		budget = d
	}
	if budget <= 0 || budget > s.cfg.reqTimeout {
		budget = s.cfg.reqTimeout
	}
	opts := []fasthgp.PortfolioOption{
		fasthgp.WithStarts(starts), fasthgp.WithSeed(seed), fasthgp.WithBudget(budget),
		fasthgp.WithParallelism(s.cfg.parallelism),
	}
	if len(chain) > 0 {
		opts = append(opts, fasthgp.WithChain(chain...))
	}
	return opts, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(s.begin).Milliseconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"requests":         s.requests.Load(),
		"in_flight":        s.inFlight.Load(),
		"ok":               s.ok200.Load(),
		"bad_request":      s.bad400.Load(),
		"too_large":        s.tooLarge.Load(),
		"busy":             s.busy429.Load(),
		"failed":           s.failed500.Load(),
		"degraded":         s.degraded.Load(),
		"panics_recovered": s.recovered.Load(),
		"queue_capacity":   s.cfg.queue,
		"uptime_ms":        time.Since(s.begin).Milliseconds(),
	})
}

func (s *server) writeJSON(w http.ResponseWriter, code int, v any) {
	s.countStatus(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, map[string]any{"error": msg, "status": code})
}

func (s *server) countStatus(code int) {
	switch code {
	case http.StatusOK:
		s.ok200.Add(1)
	case http.StatusBadRequest:
		s.bad400.Add(1)
	case http.StatusRequestEntityTooLarge:
		s.tooLarge.Add(1)
	case http.StatusTooManyRequests:
		s.busy429.Add(1)
	case http.StatusInternalServerError:
		s.failed500.Add(1)
	}
}
