package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fasthgp"
	"fasthgp/internal/checkpoint"
	"fasthgp/internal/faultinject"
	"fasthgp/internal/fleet"
	"fasthgp/internal/partition"
)

// serverConfig is the daemon's tunable surface, set by flags in main.
type serverConfig struct {
	maxBody          int64         // request-body cap; beyond it the request is 413
	queue            int           // concurrent partition requests; beyond it 429
	reqTimeout       time.Duration // per-request wall cap
	chain            []string      // default fallback chain (empty = library default)
	starts           int           // default multi-start count per tier
	seed             int64         // default seed
	budget           time.Duration // default portfolio budget (0 = reqTimeout)
	parallelism      int
	kernelWorkers    int           // intra-start kernel workers (0 = serial); wall time only, never the result
	drainTimeout     time.Duration // SIGTERM drain grace
	maxHeap          uint64        // live-heap watermark; above it new work is shed with 503 (0 = off)
	breakerThreshold int           // consecutive tier failures tripping its breaker (0 = breakers off)
	breakerCooldown  time.Duration // open-breaker cooldown before a probe
	cacheSize        int           // result-cache entries (0 = caching off)
}

// server carries the daemon state: the admission semaphore, the job
// table, the optional WAL and circuit breakers, and the atomic
// counters behind GET /stats.
type server struct {
	cfg      serverConfig
	sem      chan struct{} // admission tokens; full queue = 429
	begin    time.Time
	jobs     *fleet.JobTable
	wal      *wal                // nil = WAL disabled
	breakers *fasthgp.BreakerSet // nil = breakers disabled
	mem      *memWatcher         // nil = shedding disabled
	cache    *resultCache        // nil = result caching disabled

	draining   atomic.Bool                            // SIGTERM received: new jobs answer 503 + Retry-After
	walLastErr atomic.Value                           // string: most recent WAL append failure (surfaced on /healthz)
	lastScrub  atomic.Pointer[checkpoint.ScrubStatus] // latest WAL scrub outcome
	retrySalt  atomic.Uint64                          // splitmix64 counter behind Retry-After jitter

	requests   atomic.Int64 // partition requests admitted or rejected
	inFlight   atomic.Int64
	ok200      atomic.Int64
	bad400     atomic.Int64
	tooLarge   atomic.Int64 // 413
	busy429    atomic.Int64
	shed503    atomic.Int64 // memory-watermark sheds
	failed500  atomic.Int64
	degraded   atomic.Int64 // 200s answered by a fallback tier
	recovered  atomic.Int64 // panics converted to 500 by the middleware
	walErrs    atomic.Int64 // WAL appends that failed (serving continued)
	reqCounter atomic.Int64 // fault-injection index for hgpartd.request
}

func newServer(cfg serverConfig) *server {
	if cfg.queue < 1 {
		cfg.queue = 1
	}
	s := &server{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.queue),
		begin: time.Now(),
		jobs:  fleet.NewJobTable(),
		mem:   newMemWatcher(cfg.maxHeap),
		cache: newResultCache(cfg.cacheSize),
	}
	if cfg.breakerThreshold > 0 {
		s.breakers = fasthgp.NewBreakerSet(fasthgp.BreakerConfig{
			Threshold: cfg.breakerThreshold,
			Cooldown:  cfg.breakerCooldown,
		})
	}
	return s
}

// attachWAL wires a recovered WAL into the server: job ids continue
// after the dead process's, and every replayed job is visible to
// GET /jobs/{id} in its last known state.
func (s *server) attachWAL(w *wal, maxSeq int64, replayed []walRecord) {
	s.wal = w
	s.jobs.ContinueFrom(maxSeq)
	state := make(map[string]fleet.JobInfo)
	var order []string
	for _, rec := range replayed {
		j, seen := state[rec.JobID]
		if !seen {
			order = append(order, rec.JobID)
			j = fleet.JobInfo{ID: rec.JobID, Status: "accepted"}
		}
		switch rec.Type {
		case "done":
			j.Status, j.Cut, j.TierName, j.Degraded, j.WallMS = "done", rec.Cut, rec.TierName, rec.Degraded, rec.WallMS
		case "failed":
			j.Status, j.Error = "failed", rec.Error
		}
		state[rec.JobID] = j
	}
	for _, id := range order {
		s.jobs.Restore(state[id])
	}
}

// requeue re-enqueues the WAL's accepted-but-unfinished jobs through
// the normal admission semaphore. Recovered work is never dropped: each
// job blocks for a token instead of answering 429 (there is no client
// to answer). A job interrupted again before finishing simply stays
// pending in the WAL for the next boot.
func (s *server) requeue(pending []pendingJob) {
	for _, p := range pending {
		s.jobs.Restore(fleet.JobInfo{ID: p.JobID, Status: "requeued", Requeued: true})
		go func(p pendingJob) {
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
			s.inFlight.Add(1)
			defer s.inFlight.Add(-1)
			s.runRecovered(p)
		}(p)
	}
}

// runRecovered re-runs one WAL-replayed job end to end.
func (s *server) runRecovered(p pendingJob) {
	failJob := func(err error) {
		s.jobs.Update(p.JobID, func(j *fleet.JobInfo) { j.Status, j.Error = "failed", err.Error() })
		s.walAppend(walRecord{Type: "failed", JobID: p.JobID, Error: err.Error()})
	}
	h, inlineFixed, err := parseNetlistFixed(p.Format, strings.NewReader(p.Netlist))
	if err != nil {
		failJob(err)
		return
	}
	q, err := url.ParseQuery(p.Query)
	if err != nil {
		failJob(err)
		return
	}
	opts, _, err := s.portfolioOptions(q, h, inlineFixed)
	if err != nil {
		failJob(err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.reqTimeout)
	defer cancel()
	_, _ = s.execute(ctx, h, opts, p.JobID)
}

// parseNetlistFixed reads a netlist in the named wire format along with
// any inline fixed-vertex directives (nets format only; nil otherwise).
func parseNetlistFixed(format string, r io.Reader) (*fasthgp.Hypergraph, []int8, error) {
	switch format {
	case "", "nets":
		return fasthgp.ReadNetlistFixed(r)
	case "hgr":
		h, err := fasthgp.ReadHMetisStream(r)
		return h, nil, err
	default:
		return nil, nil, fmt.Errorf("unknown format %q", format)
	}
}

// handler builds the route table, every route behind the panic-recovery
// middleware: a panic anywhere in request handling becomes a 500 for
// that request and a counter bump, never a dead daemon.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/partition", s.handlePartition)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/jobs/", s.handleJob)
	return s.recoverMiddleware(mux)
}

func (s *server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.recovered.Add(1)
				s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// partitionResponse is the JSON body of a successful POST /partition.
type partitionResponse struct {
	JobID      string `json:"job_id"`
	Modules    int    `json:"modules"`
	Nets       int    `json:"nets"`
	Cut        int    `json:"cut"`
	Tier       int    `json:"tier"`
	TierName   string `json:"tier_name"`
	Degraded   bool   `json:"degraded"`
	Assignment []int  `json:"assignment"` // side of module v: 0 = left, 1 = right
	WallMS     int64  `json:"wall_ms"`
}

func (s *server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST a netlist body to /partition")
		return
	}
	s.requests.Add(1)
	// Drain: once SIGTERM arrives, new jobs are refused with a retryable
	// 503 and a Retry-After hint while in-flight requests finish — the
	// client (or the coordinator fronting this worker) re-routes instead
	// of watching a connection die when the drain deadline passes.
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.drainRetryAfter())
		s.writeError(w, http.StatusServiceUnavailable, "draining: daemon is shutting down; retry another instance")
		return
	}
	// Memory-aware shedding: above the live-heap watermark new work is
	// refused with a retryable 503 instead of marching toward the OOM
	// killer (which would take every in-flight request down with it).
	if s.mem != nil && s.mem.shouldShed() {
		w.Header().Set("Retry-After", s.retryAfterHint(2))
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("shedding load: live heap above %d-byte watermark; retry later", s.mem.limit))
		return
	}
	// Admission control: a full queue answers 429 immediately rather
	// than stacking goroutines until memory runs out.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", s.retryAfterHint(1))
		s.writeError(w, http.StatusTooManyRequests, "work queue full; retry later")
		return
	}
	defer func() { <-s.sem }()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	reqIdx := int(s.reqCounter.Add(1) - 1)
	faultinject.Fire(faultinject.PointServeRequest, reqIdx)

	// The body is capped before parsing; MaxBytesReader makes the
	// reader fail once cfg.maxBody is exceeded, which we map to 413
	// (oversized) as distinct from 400 (malformed). The raw bytes are
	// kept: an accepted request is journaled to the WAL verbatim so a
	// crash can replay it.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return
		}
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	format := r.URL.Query().Get("format")
	h, inlineFixed, err := parseNetlistFixed(format, bytes.NewReader(raw))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts, optsKey, err := s.portfolioOptions(r.URL.Query(), h, inlineFixed)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Result cache: an identical (netlist fingerprint, options) pair is
	// answered from memory with the originally computed body — same
	// job_id, no WAL record, no engine run. Only non-degraded successes
	// are ever stored, so a hit is always a full-fidelity answer.
	var ck cacheKey
	if s.cache != nil {
		ck = cacheKey{fingerprint: fingerprintFor(h), opts: optsKey}
		if resp, ok := s.cache.get(ck); ok {
			s.writePartition(w, resp, reqIdx)
			return
		}
	}

	// A propagated deadline already in the past is refused before the
	// job is accepted (and journaled): the caller gave up, and a WAL
	// record with no outcome would be replayed as pending at next boot.
	timeout, expired := s.requestTimeout(r)
	if expired {
		s.writeError(w, http.StatusGatewayTimeout, "propagated deadline already expired")
		return
	}

	// The request is now accepted: give it a job id and journal it
	// before running, so a crash from here on re-enqueues it at boot.
	jobID := s.jobs.Create()
	s.walAppend(walRecord{Type: "accepted", JobID: jobID,
		Format: format, Query: r.URL.RawQuery, Netlist: string(raw)})

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	resp, err := s.execute(ctx, h, opts, jobID)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("partition failed: %v", err))
		return
	}
	if s.cache != nil && !resp.Degraded {
		s.cache.put(ck, resp)
	}
	s.writePartition(w, resp, reqIdx)
}

// execute runs the portfolio for one accepted job, updating the job
// table and journaling the outcome. Shared by live requests and boot
// recovery.
func (s *server) execute(ctx context.Context, h *fasthgp.Hypergraph, opts []fasthgp.PortfolioOption, jobID string) (partitionResponse, error) {
	s.jobs.Update(jobID, func(j *fleet.JobInfo) { j.Status = "running" })
	start := time.Now()
	res, err := fasthgp.PartitionPortfolio(ctx, h, opts...)
	wallMS := time.Since(start).Milliseconds()
	if err != nil {
		s.jobs.Update(jobID, func(j *fleet.JobInfo) { j.Status, j.Error, j.WallMS = "failed", err.Error(), wallMS })
		s.walAppend(walRecord{Type: "failed", JobID: jobID, Error: err.Error()})
		return partitionResponse{}, err
	}
	if res.Degraded {
		s.degraded.Add(1)
	}
	assignment := make([]int, h.NumVertices())
	for v := range assignment {
		if res.Partition.Side(v) == partition.Right {
			assignment[v] = 1
		}
	}
	s.jobs.Update(jobID, func(j *fleet.JobInfo) {
		j.Status, j.Cut, j.TierName, j.Degraded, j.WallMS = "done", res.CutSize, res.TierName, res.Degraded, wallMS
	})
	s.walAppend(walRecord{Type: "done", JobID: jobID,
		Cut: res.CutSize, TierName: res.TierName, Degraded: res.Degraded, WallMS: wallMS})
	return partitionResponse{
		JobID:      jobID,
		Modules:    h.NumVertices(),
		Nets:       h.NumEdges(),
		Cut:        res.CutSize,
		Tier:       res.Tier,
		TierName:   res.TierName,
		Degraded:   res.Degraded,
		Assignment: assignment,
		WallMS:     wallMS,
	}, nil
}

// walAppend journals rec if the WAL is enabled. Append failures never
// fail the request — the daemon trades durability for availability and
// reports the error count and the most recent error on /healthz and
// /stats (a daemon that can serve but not journal is degraded: a crash
// right now would lose this work).
func (s *server) walAppend(rec walRecord) {
	if s.wal == nil {
		return
	}
	if err := s.wal.append(rec); err != nil {
		s.walErrs.Add(1)
		s.walLastErr.Store(err.Error())
	}
}

// startDraining flips the daemon into drain mode: new partition
// requests answer 503 + Retry-After while in-flight ones finish.
func (s *server) startDraining() { s.draining.Store(true) }

// drainRetryAfter is the Retry-After hint handed out during drain: the
// drain grace in whole seconds (at least 1), i.e. "by then this
// process is gone; try again and land on its replacement".
func (s *server) drainRetryAfter() string {
	secs := int(s.cfg.drainTimeout / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// requestTimeout derives one request's wall budget: the configured
// -req-timeout, capped by a coordinator-propagated X-Request-Deadline
// header (unix milliseconds). expired reports a deadline already in
// the past — the caller gave up; running would waste a worker slot.
func (s *server) requestTimeout(r *http.Request) (timeout time.Duration, expired bool) {
	timeout = s.cfg.reqTimeout
	hdr := r.Header.Get("X-Request-Deadline")
	if hdr == "" {
		return timeout, false
	}
	ms, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil {
		return timeout, false // malformed propagation never breaks a request
	}
	remaining := time.Until(time.UnixMilli(ms))
	if remaining <= 0 {
		return 0, true
	}
	if remaining < timeout {
		timeout = remaining
	}
	return timeout, false
}

// handleJob serves GET /jobs/{id} from the job table (rebuilt from the
// WAL at boot, so it answers for jobs the dead process accepted).
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "GET /jobs/{id}")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		s.writeError(w, http.StatusBadRequest, "want /jobs/{id}")
		return
	}
	job, ok := s.jobs.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Sprintf("job %q not tracked (finished jobs are evicted after %d newer jobs)", id, fleet.MaxJobs))
		return
	}
	s.writeJSON(w, http.StatusOK, job)
}

// portfolioOptions merges per-request query parameters over the
// daemon's configured defaults. Alongside the option list it returns
// the canonical key string for the result cache: every parameter that
// can change the computed partition (chain, starts, seed, budget, and
// the balance contract — epsilon, fixed vertices from the query or
// inline netlist directives) in a fixed rendering, after defaulting —
// so ?starts=8 and an absent starts under the default 8 share a cache
// line, while runs under different ε or fixed sets never share one
// (the netlist fingerprint alone would collide: inline fixed
// directives don't change the hypergraph). Parallelism is excluded:
// the engine guarantees it never changes the result.
func (s *server) portfolioOptions(q url.Values, h *fasthgp.Hypergraph, inlineFixed []int8) ([]fasthgp.PortfolioOption, string, error) {
	chain, starts, seed, budget := s.cfg.chain, s.cfg.starts, s.cfg.seed, s.cfg.budget
	if v := q.Get("chain"); v != "" {
		chain = strings.Split(v, ",")
	}
	if v := q.Get("starts"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, "", fmt.Errorf("bad starts %q", v)
		}
		starts = n
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, "", fmt.Errorf("bad seed %q", v)
		}
		seed = n
	}
	if v := q.Get("budget"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, "", fmt.Errorf("bad budget %q", v)
		}
		budget = d
	}
	if budget <= 0 || budget > s.cfg.reqTimeout {
		budget = s.cfg.reqTimeout
	}
	constraint := fasthgp.Constraint{FixedSide: inlineFixed}
	if v := q.Get("epsilon"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil || eps < 0 {
			return nil, "", fmt.Errorf("bad epsilon %q", v)
		}
		constraint.Epsilon = eps
	}
	if v := q.Get("fixed"); v != "" {
		fixed, err := fasthgp.ParseFixedSpec(v, h.NumVertices())
		if err != nil {
			return nil, "", err
		}
		constraint.FixedSide = fixed
	}
	if err := constraint.Validate(h.NumVertices(), 2); err != nil {
		return nil, "", err
	}
	opts := []fasthgp.PortfolioOption{
		fasthgp.WithStarts(starts), fasthgp.WithSeed(seed), fasthgp.WithBudget(budget),
		fasthgp.WithParallelism(s.cfg.parallelism),
		fasthgp.WithKernelWorkers(s.cfg.kernelWorkers),
	}
	if len(chain) > 0 {
		opts = append(opts, fasthgp.WithChain(chain...))
	}
	if s.breakers != nil {
		opts = append(opts, fasthgp.WithBreakers(s.breakers))
	}
	if !constraint.IsZero() {
		opts = append(opts, fasthgp.WithConstraint(constraint))
	}
	key := fmt.Sprintf("chain=%s starts=%d seed=%d budget=%s constraint=%q",
		strings.Join(chain, ","), starts, seed, budget, constraint.Key())
	return opts, key, nil
}

// handleHealthz is the liveness/readiness probe. It always answers
// HTTP 200 while the process serves (liveness); degradation — open
// breakers, the heap above the shedding watermark, WAL append errors —
// is reported in the body as status "degraded" with the reasons, plus
// the queue depth, per-tier breaker states, and the age of the last
// durable WAL record.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":         "ok",
		"uptime_ms":      time.Since(s.begin).Milliseconds(),
		"queue_depth":    len(s.sem),
		"queue_capacity": s.cfg.queue,
		"jobs":           s.jobs.Counts(),
	}
	var reasons []string
	if s.breakers != nil {
		states := s.breakers.States()
		resp["breakers"] = states
		for name, state := range states {
			if state == "open" {
				reasons = append(reasons, "circuit breaker open: "+name)
			}
		}
	}
	if s.mem != nil {
		heap := s.mem.heapBytes()
		resp["heap_bytes"] = heap
		resp["max_heap_bytes"] = s.mem.limit
		if heap > s.mem.limit {
			reasons = append(reasons, "live heap above shedding watermark")
		}
	}
	if s.cache != nil {
		resp["cache"] = s.cache.snapshot()
	} else {
		resp["cache"] = false
	}
	if s.wal != nil {
		resp["wal"] = true
		resp["last_checkpoint_age_ms"] = s.wal.lastAppendAge().Milliseconds()
		resp["wal_errors"] = s.walErrs.Load()
		if n := s.walErrs.Load(); n > 0 {
			last, _ := s.walLastErr.Load().(string)
			resp["wal_last_error"] = last
			reasons = append(reasons, fmt.Sprintf("%d WAL append error(s), last: %s", n, last))
		}
		if p := s.lastScrub.Load(); p != nil {
			st := *p
			st.AgeMS = time.Since(st.At).Milliseconds()
			resp["wal_scrub"] = st
			if !st.Healthy() {
				reasons = append(reasons, "wal scrub: "+st.Problem())
			}
		}
	} else {
		resp["wal"] = false
	}
	if s.draining.Load() {
		resp["draining"] = true
		reasons = append(reasons, "draining: shutting down")
	}
	if len(reasons) > 0 {
		sort.Strings(reasons)
		resp["status"] = "degraded"
		resp["degraded_reasons"] = reasons
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var cache any = false
	if s.cache != nil {
		cache = s.cache.snapshot()
	}
	stats := map[string]any{
		"cache":            cache,
		"requests":         s.requests.Load(),
		"in_flight":        s.inFlight.Load(),
		"ok":               s.ok200.Load(),
		"bad_request":      s.bad400.Load(),
		"too_large":        s.tooLarge.Load(),
		"busy":             s.busy429.Load(),
		"shed":             s.shed503.Load(),
		"failed":           s.failed500.Load(),
		"degraded":         s.degraded.Load(),
		"panics_recovered": s.recovered.Load(),
		"wal_errors":       s.walErrs.Load(),
		"jobs":             s.jobs.Counts(),
		"queue_capacity":   s.cfg.queue,
		"uptime_ms":        time.Since(s.begin).Milliseconds(),
	}
	if p := s.lastScrub.Load(); p != nil {
		st := *p
		st.AgeMS = time.Since(st.At).Milliseconds()
		stats["wal_scrub"] = st
	}
	s.writeJSON(w, http.StatusOK, stats)
}

func (s *server) writeJSON(w http.ResponseWriter, code int, v any) {
	s.countStatus(code)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *server) writeError(w http.ResponseWriter, code int, msg string) {
	s.writeJSON(w, code, map[string]any{"error": msg, "status": code})
}

func (s *server) countStatus(code int) {
	switch code {
	case http.StatusOK:
		s.ok200.Add(1)
	case http.StatusBadRequest:
		s.bad400.Add(1)
	case http.StatusRequestEntityTooLarge:
		s.tooLarge.Add(1)
	case http.StatusTooManyRequests:
		s.busy429.Add(1)
	case http.StatusServiceUnavailable:
		s.shed503.Add(1)
	case http.StatusInternalServerError:
		s.failed500.Add(1)
	}
}
