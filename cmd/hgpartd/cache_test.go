package main

// Correctness tests for the fingerprint-keyed result cache: identical
// resubmissions must return the byte-identical body while only the hit
// counter moves; any change to the netlist or to a result-affecting
// option must miss; degraded responses must never be stored; and the
// LRU bound must hold.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func cacheCounters(t *testing.T, s *server) (hits, misses, size int64) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var body struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
			Size   int64 `json:"size"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	return body.Cache.Hits, body.Cache.Misses, body.Cache.Size
}

func TestCacheHitReturnsIdenticalBody(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.cacheSize = 8 })
	h := s.handler()

	first := post(t, h, "/partition?seed=3", testNets)
	if first.Code != http.StatusOK {
		t.Fatalf("first = %d: %s", first.Code, first.Body)
	}
	if hits, misses, _ := cacheCounters(t, s); hits != 0 || misses != 1 {
		t.Fatalf("after first request: hits=%d misses=%d, want 0/1", hits, misses)
	}

	second := post(t, h, "/partition?seed=3", testNets)
	if second.Code != http.StatusOK {
		t.Fatalf("second = %d: %s", second.Code, second.Body)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatalf("cache hit body differs:\nfirst:  %s\nsecond: %s", first.Body, second.Body)
	}
	if hits, misses, size := cacheCounters(t, s); hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("after resubmission: hits=%d misses=%d size=%d, want 1/1/1", hits, misses, size)
	}
}

func TestCacheMissOnMutatedNetlistOrOptions(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.cacheSize = 8 })
	h := s.handler()

	if rec := post(t, h, "/partition?seed=3", testNets); rec.Code != http.StatusOK {
		t.Fatalf("seed run = %d: %s", rec.Code, rec.Body)
	}

	// One extra net: the fingerprint must discriminate.
	mutated := testNets + "net n5 a f\n"
	if rec := post(t, h, "/partition?seed=3", mutated); rec.Code != http.StatusOK {
		t.Fatalf("mutated run = %d: %s", rec.Code, rec.Body)
	}
	if hits, misses, _ := cacheCounters(t, s); hits != 0 || misses != 2 {
		t.Fatalf("mutated netlist: hits=%d misses=%d, want 0/2", hits, misses)
	}

	// Same netlist, different result-affecting option: also a miss.
	if rec := post(t, h, "/partition?seed=4", testNets); rec.Code != http.StatusOK {
		t.Fatalf("reseeded run = %d: %s", rec.Code, rec.Body)
	}
	if hits, misses, _ := cacheCounters(t, s); hits != 0 || misses != 3 {
		t.Fatalf("different seed: hits=%d misses=%d, want 0/3", hits, misses)
	}
}

func TestCacheKeyCanonicalizesDefaults(t *testing.T) {
	// Spelling out the configured defaults must share a cache line with
	// omitting them.
	s := testServer(func(c *serverConfig) { c.cacheSize = 8 })
	h := s.handler()
	if rec := post(t, h, "/partition", testNets); rec.Code != http.StatusOK {
		t.Fatalf("defaulted = %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/partition?starts=2&seed=1", testNets); rec.Code != http.StatusOK {
		t.Fatalf("explicit = %d: %s", rec.Code, rec.Body)
	}
	if hits, misses, _ := cacheCounters(t, s); hits != 1 || misses != 1 {
		t.Fatalf("canonicalization: hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestCacheDisabledByDefaultConfigZero(t *testing.T) {
	s := testServer() // testServer sets cacheSize 0 unless overridden
	h := s.handler()
	for i := 0; i < 2; i++ {
		if rec := post(t, h, "/partition?seed=3", testNets); rec.Code != http.StatusOK {
			t.Fatalf("run %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := httptest.NewRecorder()
	s.handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if !strings.Contains(rec.Body.String(), `"cache":false`) {
		t.Fatalf("healthz should report cache:false when disabled: %s", rec.Body)
	}
}

func TestCacheLRUBound(t *testing.T) {
	c := newResultCache(2)
	k := func(i uint64) cacheKey { return cacheKey{fingerprint: i, opts: "o"} }
	c.put(k(1), partitionResponse{JobID: "a"})
	c.put(k(2), partitionResponse{JobID: "b"})
	if _, ok := c.get(k(1)); !ok { // bump 1 to most recent
		t.Fatal("entry 1 evicted early")
	}
	c.put(k(3), partitionResponse{JobID: "c"}) // evicts 2, the LRU
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU entry 2 not evicted at capacity")
	}
	for _, i := range []uint64{1, 3} {
		if _, ok := c.get(k(i)); !ok {
			t.Fatalf("entry %d wrongly evicted", i)
		}
	}
	if snap := c.snapshot(); snap["size"] != 2 {
		t.Fatalf("size = %v, want 2", snap["size"])
	}
}

// TestCacheNeverLeaksAcrossConstraints is the constraint-isolation
// guarantee: inline fixed directives and epsilon/fixed query params do
// not change the hypergraph fingerprint, so the cache key must carry
// the canonical constraint key — a result computed under one balance
// contract must never be served for another.
func TestCacheNeverLeaksAcrossConstraints(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.cacheSize = 8 })
	h := s.handler()

	// Same netlist, three distinct contracts: unconstrained, ε=0.1, ε=0.5.
	for i, q := range []string{"", "&epsilon=0.1", "&epsilon=0.5"} {
		if rec := post(t, h, "/partition?seed=3"+q, testNets); rec.Code != http.StatusOK {
			t.Fatalf("run %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	if hits, misses, _ := cacheCounters(t, s); hits != 0 || misses != 3 {
		t.Fatalf("distinct epsilons: hits=%d misses=%d, want 0/3", hits, misses)
	}

	// Different fixed sets under the same ε: also distinct lines.
	if rec := post(t, h, "/partition?seed=3&epsilon=0.1&fixed=0:L", testNets); rec.Code != http.StatusOK {
		t.Fatalf("fixed run = %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/partition?seed=3&epsilon=0.1&fixed=0:R", testNets); rec.Code != http.StatusOK {
		t.Fatalf("fixed run = %d: %s", rec.Code, rec.Body)
	}
	if hits, misses, _ := cacheCounters(t, s); hits != 0 || misses != 5 {
		t.Fatalf("distinct fixed sets: hits=%d misses=%d, want 0/5", hits, misses)
	}

	// Resubmitting each identical contract must hit its own line.
	for i, q := range []string{"", "&epsilon=0.1", "&epsilon=0.5", "&epsilon=0.1&fixed=0:L", "&epsilon=0.1&fixed=0:R"} {
		if rec := post(t, h, "/partition?seed=3"+q, testNets); rec.Code != http.StatusOK {
			t.Fatalf("rerun %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	if hits, misses, size := cacheCounters(t, s); hits != 5 || misses != 5 || size != 5 {
		t.Fatalf("resubmissions: hits=%d misses=%d size=%d, want 5/5/5", hits, misses, size)
	}
}

// TestCacheDiscriminatesInlineFixedDirectives covers the sharpest
// corner: two netlists whose nets are identical but whose inline fixed
// directives differ hash to the same hypergraph fingerprint, so only
// the constraint component of the key keeps them apart.
func TestCacheDiscriminatesInlineFixedDirectives(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.cacheSize = 8 })
	h := s.handler()

	pinnedL := testNets + "fixed a L\n"
	pinnedR := testNets + "fixed a R\n"
	if rec := post(t, h, "/partition?seed=3", pinnedL); rec.Code != http.StatusOK {
		t.Fatalf("pinned-L = %d: %s", rec.Code, rec.Body)
	}
	if rec := post(t, h, "/partition?seed=3", pinnedR); rec.Code != http.StatusOK {
		t.Fatalf("pinned-R = %d: %s", rec.Code, rec.Body)
	}
	if hits, misses, _ := cacheCounters(t, s); hits != 0 || misses != 2 {
		t.Fatalf("inline fixed variants: hits=%d misses=%d, want 0/2", hits, misses)
	}
}
