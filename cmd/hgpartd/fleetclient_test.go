package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeCoordinator records register/heartbeat/deregister traffic and can
// answer heartbeats 404 to force re-registration.
type fakeCoordinator struct {
	mu          sync.Mutex
	registered  []string // ids in registration order
	beats       int
	deregisters int
	forget      bool // answer heartbeats 404 until the next register
}

func (f *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		var body struct{ ID, Addr string }
		b, _ := io.ReadAll(r.Body)
		_ = json.Unmarshal(b, &body)
		f.mu.Lock()
		f.registered = append(f.registered, body.ID)
		f.forget = false
		f.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{"heartbeat_interval_ms": 10})
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.forget {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		f.beats++
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/deregister", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.deregisters++
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// TestFleetClientRegistersBeatsAndReregisters drives the full worker
// lifecycle: register, heartbeat at the coordinator-provided interval,
// re-register when the coordinator answers 404 (restart or silence
// ejection), and deregister at stop.
func TestFleetClientRegistersBeatsAndReregisters(t *testing.T) {
	fake := &fakeCoordinator{}
	srv := httptest.NewServer(fake.handler())
	defer srv.Close()

	fc := newFleetClient(srv.URL, "w1", "127.0.0.1:9999", 0, io.Discard)
	fc.start()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			fake.mu.Lock()
			ok := cond()
			fake.mu.Unlock()
			if ok {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	waitFor("first registration and a heartbeat", func() bool {
		return len(fake.registered) >= 1 && fake.beats >= 1
	})

	// Coordinator forgets the worker: the next beat answers 404 and the
	// client must re-register on its own.
	fake.mu.Lock()
	fake.forget = true
	fake.mu.Unlock()
	waitFor("automatic re-registration", func() bool { return len(fake.registered) >= 2 })
	waitFor("heartbeats after rejoin", func() bool { return fake.beats >= 2 })

	fc.stop()
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if fake.deregisters != 1 {
		t.Errorf("deregisters = %d, want 1", fake.deregisters)
	}
	for _, id := range fake.registered {
		if id != "w1" {
			t.Errorf("registered id %q, want w1", id)
		}
	}
}
