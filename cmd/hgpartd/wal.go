package main

// Write-ahead log of accepted partition requests, built on the
// checkpoint journal's crash-safe frames (CRC-framed records, fsync per
// append, torn tail truncated on open) with JSON payloads. Every
// accepted request is logged — job id, netlist body, query parameters —
// before it runs, and its outcome is logged when it finishes. A daemon
// that dies mid-request therefore leaves an "accepted" record with no
// terminal record; the boot recovery scan finds those and re-enqueues
// them, so a kill -9 loses no accepted work, and GET /jobs/{id} can
// answer for jobs whose client has long since disconnected.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/fleet"
)

// walVersion is bumped whenever the WAL record schema changes.
const walVersion = 1

// walHeader is the journal's header payload, identifying the file.
type walHeader struct {
	Version int    `json:"version"`
	Purpose string `json:"purpose"`
}

// walRecord is one JSON frame. Type "accepted" carries the request
// itself (enough to re-run it); "done"/"failed" carry the outcome.
type walRecord struct {
	Type  string `json:"type"` // accepted | done | failed
	JobID string `json:"job_id"`

	// accepted
	Format  string `json:"format,omitempty"`
	Query   string `json:"query,omitempty"` // raw query string (chain/starts/seed/budget)
	Netlist string `json:"netlist,omitempty"`

	// done
	Cut      int    `json:"cut,omitempty"`
	TierName string `json:"tier_name,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`

	// failed
	Error string `json:"error,omitempty"`
}

// pendingJob is an accepted request the previous process never
// finished; boot recovery re-enqueues these.
type pendingJob struct {
	JobID   string
	Format  string
	Query   string
	Netlist string
}

// wal serializes appends to the underlying journal and remembers when
// the last record was made durable (surfaced by /healthz).
type wal struct {
	mu         sync.Mutex
	j          *checkpoint.Journal
	lastAppend time.Time
}

// openWAL opens (replaying) or creates the WAL at path. It returns the
// wal, the highest job sequence number seen (so new ids continue after
// the old process's), the replayed terminal job outcomes, and the
// accepted-but-unfinished jobs to re-enqueue.
func openWAL(path string) (w *wal, maxSeq int64, replayed []walRecord, pending []pendingJob, err error) {
	if _, statErr := os.Stat(path); os.IsNotExist(statErr) {
		hdr, _ := json.Marshal(walHeader{Version: walVersion, Purpose: "hgpartd-wal"})
		j, err := checkpoint.Create(path, hdr)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		return &wal{j: j, lastAppend: time.Now()}, 0, nil, nil, nil
	}
	j, records, err := checkpoint.Open(path)
	if err != nil {
		return nil, 0, nil, nil, fmt.Errorf("wal: %w", err)
	}
	if len(records) == 0 {
		j.Close()
		return nil, 0, nil, nil, fmt.Errorf("wal: %s has no header record", path)
	}
	var hdr walHeader
	if err := json.Unmarshal(records[0], &hdr); err != nil || hdr.Purpose != "hgpartd-wal" {
		j.Close()
		return nil, 0, nil, nil, fmt.Errorf("wal: %s is not an hgpartd WAL", path)
	}
	if hdr.Version != walVersion {
		j.Close()
		return nil, 0, nil, nil, fmt.Errorf("wal: %s is version %d, this daemon speaks %d", path, hdr.Version, walVersion)
	}

	open := make(map[string]pendingJob)
	var order []string
	for _, raw := range records[1:] {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue // a stray record never blocks boot; frames are CRC-checked, this is schema drift
		}
		replayed = append(replayed, rec)
		if n := fleet.JobSeq(rec.JobID); n > maxSeq {
			maxSeq = n
		}
		switch rec.Type {
		case "accepted":
			open[rec.JobID] = pendingJob{JobID: rec.JobID, Format: rec.Format, Query: rec.Query, Netlist: rec.Netlist}
			order = append(order, rec.JobID)
		case "done", "failed":
			delete(open, rec.JobID)
		}
	}
	for _, id := range order {
		if p, ok := open[id]; ok {
			pending = append(pending, p)
		}
	}
	return &wal{j: j, lastAppend: time.Now()}, maxSeq, replayed, pending, nil
}

// append journals one record durably (fsynced before return).
func (w *wal) append(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.j.Append(payload); err != nil {
		return err
	}
	w.lastAppend = time.Now()
	return nil
}

// lastAppendAge is the time since the last durable record.
func (w *wal) lastAppendAge() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Since(w.lastAppend)
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.j.Close()
}
