// Command hgpartd serves hypergraph partitioning over HTTP, built on
// the resilience portfolio: every request runs a deadline-aware
// fallback chain, every candidate is certified by the invariant
// oracle, and a panic anywhere in a request is converted into a 500
// for that request alone.
//
// Endpoints:
//
//	POST /partition   netlist body -> JSON cut (with a job_id)
//	                  query: format=nets|hgr, chain=fm,core,
//	                  starts=N, seed=N, budget=500ms
//	GET  /jobs/{id}   one job's state, surviving daemon restarts
//	GET  /healthz     liveness probe; body reports ok/degraded with
//	                  queue depth, breaker states, WAL record age
//	GET  /stats       atomic request counters
//
// Overload and abuse map to status codes, not failures: a full work
// queue answers 429 with Retry-After, a body over -max-body answers
// 413, a malformed netlist answers 400, and with -max-heap set the
// daemon sheds new work with a retryable 503 while the live heap sits
// above the watermark. SIGTERM/SIGINT starts a drain: new jobs are
// refused with 503 + Retry-After while in-flight requests finish, for
// up to -drain-timeout, then the process exits 0.
//
// With -coordinator the daemon joins an hgpartcoord fleet: it
// registers itself (as -worker-id, advertising -advertise), heartbeats
// periodically, re-registers automatically if the coordinator restarts
// or ejects it for silence, and deregisters at the start of drain. A
// coordinator-propagated X-Request-Deadline header (unix milliseconds)
// caps the per-request budget below -req-timeout.
//
// With -wal the daemon journals every accepted request to a crash-safe
// write-ahead log before running it and journals the outcome after; at
// boot the WAL is replayed, jobs the previous process accepted but
// never finished are re-enqueued, and GET /jobs/{id} answers for all
// of them. A kill -9 therefore loses no accepted work.
//
// Tiers that keep failing trip a per-tier circuit breaker
// (-breaker-threshold consecutive failures): the tier is skipped —
// and its budget share rolls to the tiers that run — until
// -breaker-cooldown admits a single probe request.
//
// Results are cached (-cache entries, LRU; 0 disables): a request
// whose netlist fingerprint and effective options match an earlier
// non-degraded success is answered from memory with the original body.
// Hit/miss counters appear on /healthz and /stats. With -pprof ADDR
// the daemon additionally serves net/http/pprof on a separate listener
// (off by default).
//
// Example:
//
//	hgpartd -addr :8080 -queue 4 -wal /var/lib/hgpartd/wal -max-heap 1073741824 &
//	curl -s -X POST --data-binary @netlist.nets \
//	    'localhost:8080/partition?chain=multilevel,fm,core&budget=2s'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fasthgp/internal/faultinject"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main; it blocks until SIGTERM/SIGINT or
// a listener failure, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hgpartd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (use :0 for an ephemeral port; the actual address is printed)")
		maxBody      = fs.Int64("max-body", 8<<20, "max request body bytes; beyond it the request is 413")
		queue        = fs.Int("queue", 4, "max concurrent partition requests; beyond it 429")
		reqTimeout   = fs.Duration("req-timeout", 30*time.Second, "per-request wall budget")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "grace for in-flight requests on SIGTERM")
		chain        = fs.String("chain", "", "default fallback chain, comma-separated (empty = multilevel,fm,algo1)")
		starts       = fs.Int("starts", 8, "default multi-start count per tier")
		seed         = fs.Int64("seed", 1, "default random seed")
		budget       = fs.Duration("budget", 0, "default portfolio budget (0 = -req-timeout)")
		parallel     = fs.Int("parallel", 0, "engine workers per request (0 = GOMAXPROCS)")
		workers      = fs.Int("workers", 0, "intra-start kernel workers (dual-graph build, double BFS) per start (0 = serial); affects wall time only, never the result")
		walPath      = fs.String("wal", "", "write-ahead log path: accepted requests are journaled and replayed after a crash (empty = off)")
		scrubEvery   = fs.Duration("scrub-interval", time.Minute, "WAL integrity-scrub cadence; rot degrades /healthz (0 = off)")
		maxHeap      = fs.Uint64("max-heap", 0, "live-heap watermark in bytes; above it new requests are shed with 503 (0 = off)")
		brkThresh    = fs.Int("breaker-threshold", 3, "consecutive failures tripping a tier's circuit breaker (0 = breakers off)")
		brkCooldown  = fs.Duration("breaker-cooldown", 30*time.Second, "how long a tripped breaker skips its tier before probing")
		cacheSize    = fs.Int("cache", 128, "result-cache entries, keyed by netlist fingerprint + options (0 = off)")
		pprofAddr    = fs.String("pprof", "", "listen address for net/http/pprof, e.g. 127.0.0.1:6060 (empty = off)")
		faults       = fs.String("faultinject", "", "fault-injection spec, e.g. 'latency@hgpartd.request:0=2s' (also read from FASTHGP_FAULTS)")
		coordinator  = fs.String("coordinator", "", "hgpartcoord base URL to register with, e.g. http://127.0.0.1:7070 (empty = standalone)")
		workerID     = fs.String("worker-id", "", "fleet worker id (default hgpartd-<pid>)")
		advertise    = fs.String("advertise", "", "address the coordinator should forward to (default the actual listen address)")
		hbInterval   = fs.Duration("heartbeat-interval", 0, "heartbeat period when registered (0 = coordinator-provided)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "hgpartd:", err)
		return 1
	}
	spec := *faults
	if spec == "" {
		spec = os.Getenv("FASTHGP_FAULTS")
	}
	if spec != "" {
		plan, err := faultinject.ParseSpec(spec)
		if err != nil {
			return fail(err)
		}
		defer faultinject.Install(plan)()
		fmt.Fprintf(stdout, "hgpartd: fault injection armed: %s\n", spec)
	}

	cfg := serverConfig{
		maxBody:          *maxBody,
		queue:            *queue,
		reqTimeout:       *reqTimeout,
		starts:           *starts,
		seed:             *seed,
		budget:           *budget,
		parallelism:      *parallel,
		kernelWorkers:    *workers,
		drainTimeout:     *drainTimeout,
		maxHeap:          *maxHeap,
		breakerThreshold: *brkThresh,
		breakerCooldown:  *brkCooldown,
		cacheSize:        *cacheSize,
	}
	if *chain != "" {
		cfg.chain = strings.Split(*chain, ",")
	}
	s := newServer(cfg)

	// Boot recovery: replay the WAL, surface every journaled job on
	// /jobs/{id}, and re-enqueue whatever the previous process accepted
	// but never finished.
	if *walPath != "" {
		w, maxSeq, replayed, pending, err := openWAL(*walPath)
		if err != nil {
			return fail(err)
		}
		defer w.close()
		s.attachWAL(w, maxSeq, replayed)
		if len(replayed) > 0 || len(pending) > 0 {
			fmt.Fprintf(stdout, "hgpartd: WAL %s: replayed %d record(s), re-enqueuing %d interrupted job(s)\n",
				*walPath, len(replayed), len(pending))
		}
		s.requeue(pending)
	}

	// Profiling endpoint, off by default and on its own listener + mux
	// so the serving port never exposes /debug/pprof.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fail(err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Fprintf(stdout, "hgpartd: pprof listening on %s\n", pln.Addr())
		go func() { _ = http.Serve(pln, pmux) }()
	}

	// Listen before Serve so :0 resolves and the real address is
	// printed for whoever (CI, scripts) needs to find the port.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "hgpartd: listening on %s\n", ln.Addr())

	// Fleet membership: register with the coordinator once the real
	// listen address is known, so -addr :0 still advertises correctly.
	var fc *fleetClient
	if *coordinator != "" {
		id := *workerID
		if id == "" {
			id = fmt.Sprintf("hgpartd-%d", os.Getpid())
		}
		adv := *advertise
		if adv == "" {
			adv = ln.Addr().String()
		}
		fc = newFleetClient(strings.TrimRight(*coordinator, "/"), id, adv, *hbInterval, stdout)
		fc.start()
	}

	httpSrv := &http.Server{
		Handler:           s.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if s.wal != nil && *scrubEvery > 0 {
		go s.scrubLoop(*scrubEvery, ctx.Done())
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fail(err)
	case <-ctx.Done():
	}
	stop()
	// Drain order matters: flip the 503-with-Retry-After gate first (new
	// jobs bounce immediately), deregister from the fleet so the
	// coordinator routes away, then wait out the in-flight requests.
	s.startDraining()
	if fc != nil {
		fc.stop()
	}
	fmt.Fprintf(stdout, "hgpartd: signal received, draining for up to %s\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fail(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(stdout, "hgpartd: drained, bye")
	return 0
}
