package main

// Tests for the load-derived Retry-After hints, the byzantine fault
// mode, and the WAL scrubber's /healthz wiring.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"fasthgp/internal/faultinject"
)

// TestRetryAfterHintBounds: hints stay at or above the nominal floor,
// within the jitter ceiling, and actually vary — rejected clients are
// decorrelated, not herded onto one retry instant.
func TestRetryAfterHintBounds(t *testing.T) {
	s := testServer(func(c *serverConfig) { c.queue = 4 })
	check := func(nominal, maxSpread int) {
		t.Helper()
		seen := map[int]bool{}
		for i := 0; i < 200; i++ {
			v, err := strconv.Atoi(s.retryAfterHint(nominal))
			if err != nil {
				t.Fatalf("non-numeric hint: %v", err)
			}
			if v < nominal || v > nominal+maxSpread {
				t.Fatalf("hint %d outside [%d, %d]", v, nominal, nominal+maxSpread)
			}
			seen[v] = true
		}
		if len(seen) < 2 {
			t.Errorf("200 hints all identical (%v): no jitter", seen)
		}
	}
	check(1, 1) // empty queue: spread 1
	check(2, 1)

	// A saturated queue widens the spread.
	for i := 0; i < 4; i++ {
		s.sem <- struct{}{}
	}
	check(1, 4)
	check(2, 4)
}

// TestByzantineModeLiesOnlyOnWire: a corrupt rule on hgpartd.request
// makes the daemon lie about its cut in the HTTP response, while the
// job table and the result cache keep the honest answer — the exact
// failure only coordinator-side verification can catch.
func TestByzantineModeLiesOnlyOnWire(t *testing.T) {
	defer faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointServeRequest, Index: 0, Kind: faultinject.KindCorrupt},
	}})()
	s := testServer(func(c *serverConfig) { c.cacheSize = 16 })
	h := s.handler()

	rec := post(t, h, "/partition?seed=3", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var lied partitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lied); err != nil {
		t.Fatal(err)
	}

	// Same request again: index 1 has no rule, and the answer comes from
	// the cache — which must hold the honest value, not the lie.
	rec = post(t, h, "/partition?seed=3", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("second status = %d: %s", rec.Code, rec.Body)
	}
	var honest partitionResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &honest); err != nil {
		t.Fatal(err)
	}
	if lied.Cut != honest.Cut+1 {
		t.Errorf("lied cut = %d, honest = %d, want lie = honest+1", lied.Cut, honest.Cut)
	}
	// The job table journaled the honest outcome.
	if j, ok := s.jobs.Get(lied.JobID); !ok || j.Cut != honest.Cut {
		t.Errorf("job table cut = %+v, want honest %d", j, honest.Cut)
	}
}

// TestWALScrubDegradesHealthz: a clean WAL scrubs healthy; rot landing
// after open flips /healthz to degraded with a wal-scrub reason and
// surfaces the report on /stats.
func TestWALScrubDegradesHealthz(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "hgpartd.wal")
	w, maxSeq, replayed, _, err := openWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	s := testServer()
	s.attachWAL(w, maxSeq, replayed)
	if err := w.append(walRecord{Type: "accepted", JobID: "j1", Netlist: testNets}); err != nil {
		t.Fatal(err)
	}
	h := s.handler()

	healthz := func() map[string]any {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return m
	}

	s.runScrub()
	if m := healthz(); m["status"] != "ok" {
		t.Fatalf("clean WAL healthz = %v (reasons %v)", m["status"], m["degraded_reasons"])
	}

	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xBA, 0xD1}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s.runScrub()
	m := healthz()
	if m["status"] != "degraded" {
		t.Fatalf("rotted WAL healthz = %v, want degraded", m["status"])
	}
	found := false
	if reasons, ok := m["degraded_reasons"].([]any); ok {
		for _, r := range reasons {
			if rs, _ := r.(string); strings.Contains(rs, "wal scrub") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no wal-scrub degraded reason: %v", m["degraded_reasons"])
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if !strings.Contains(rec.Body.String(), "wal_scrub") {
		t.Errorf("stats missing wal_scrub: %s", rec.Body)
	}
}
