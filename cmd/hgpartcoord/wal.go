package main

// Coordinator write-ahead log, on the same crash-safe checkpoint
// journal as hgpartd's worker WAL but with its own purpose tag and
// record shape: an accepted record carries the request verbatim plus
// the routing key (netlist fingerprint + canonical options), so boot
// recovery can re-enqueue it as a detached job with dedup intact. A
// coordinator killed mid-handoff therefore loses no accepted work —
// the job re-forwards to whichever workers register after the restart,
// and a duplicate of a job that already completed is answered from the
// handoff queue's completion memory instead of running twice.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/fleet"
)

// coordWALVersion is bumped whenever the record schema changes.
const coordWALVersion = 1

type coordWALHeader struct {
	Version int    `json:"version"`
	Purpose string `json:"purpose"`
}

// coordWALRecord is one JSON frame. Type "accepted" carries the
// request and its routing key; "done"/"failed" carry the outcome.
type coordWALRecord struct {
	Type  string `json:"type"` // accepted | done | failed
	JobID string `json:"job_id"`

	// accepted
	Format      string `json:"format,omitempty"`
	Query       string `json:"query,omitempty"`
	Netlist     string `json:"netlist,omitempty"`
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	Opts        string `json:"opts,omitempty"`

	// done
	Cut      int    `json:"cut,omitempty"`
	TierName string `json:"tier_name,omitempty"`
	Worker   string `json:"worker,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	WallMS   int64  `json:"wall_ms,omitempty"`

	// failed
	Error string `json:"error,omitempty"`
}

// coordWAL serializes appends and remembers the last durable append.
type coordWAL struct {
	mu         sync.Mutex
	j          *checkpoint.Journal
	lastAppend time.Time
}

// openCoordWAL opens (replaying) or creates the WAL at path. It
// returns the wal, the highest job sequence seen, the replayed
// terminal outcomes (to surface on /jobs/{id}), and the
// accepted-but-unfinished jobs to re-enqueue as detached handoffs.
func openCoordWAL(path string) (w *coordWAL, maxSeq int64, replayed []coordWALRecord, pending []fleet.Job, err error) {
	if _, statErr := os.Stat(path); os.IsNotExist(statErr) {
		hdr, _ := json.Marshal(coordWALHeader{Version: coordWALVersion, Purpose: "hgpartcoord-wal"})
		j, err := checkpoint.Create(path, hdr)
		if err != nil {
			return nil, 0, nil, nil, err
		}
		return &coordWAL{j: j, lastAppend: time.Now()}, 0, nil, nil, nil
	}
	j, records, err := checkpoint.Open(path)
	if err != nil {
		return nil, 0, nil, nil, fmt.Errorf("wal: %w", err)
	}
	if len(records) == 0 {
		j.Close()
		return nil, 0, nil, nil, fmt.Errorf("wal: %s has no header record", path)
	}
	var hdr coordWALHeader
	if err := json.Unmarshal(records[0], &hdr); err != nil || hdr.Purpose != "hgpartcoord-wal" {
		j.Close()
		return nil, 0, nil, nil, fmt.Errorf("wal: %s is not an hgpartcoord WAL", path)
	}
	if hdr.Version != coordWALVersion {
		j.Close()
		return nil, 0, nil, nil, fmt.Errorf("wal: %s is version %d, this coordinator speaks %d", path, hdr.Version, coordWALVersion)
	}

	open := make(map[string]fleet.Job)
	var order []string
	for _, raw := range records[1:] {
		var rec coordWALRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			continue // frames are CRC-checked; this is schema drift, never a boot blocker
		}
		replayed = append(replayed, rec)
		if n := fleet.JobSeq(rec.JobID); n > maxSeq {
			maxSeq = n
		}
		switch rec.Type {
		case "accepted":
			open[rec.JobID] = fleet.Job{
				ID:       rec.JobID,
				Key:      fleet.JobKey{Fingerprint: rec.Fingerprint, Opts: rec.Opts},
				Format:   rec.Format,
				Query:    rec.Query,
				Netlist:  rec.Netlist,
				Detached: true, // its client died with the old process
			}
			order = append(order, rec.JobID)
		case "done", "failed":
			delete(open, rec.JobID)
		}
	}
	for _, id := range order {
		if p, ok := open[id]; ok {
			pending = append(pending, p)
		}
	}
	return &coordWAL{j: j, lastAppend: time.Now()}, maxSeq, replayed, pending, nil
}

// append journals one record durably (fsynced before return).
func (w *coordWAL) append(rec coordWALRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.j.Append(payload); err != nil {
		return err
	}
	w.lastAppend = time.Now()
	return nil
}

// lastAppendAge is the time since the last durable record.
func (w *coordWAL) lastAppendAge() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Since(w.lastAppend)
}

// scrub re-walks the WAL's CRC frames read-only. It holds the append
// mutex so the scan never observes a frame mid-write — appends are
// fsynced under the same lock, so the on-disk prefix is frame-complete.
func (w *coordWAL) scrub() (checkpoint.ScrubReport, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return checkpoint.ScrubFile(w.j.Path())
}

func (w *coordWAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.j.Close()
}
