package main

// Forwarding: consistent-hash routing with breaker-aware failover,
// jittered retry backoff, and deadline propagation.
//
// A job's candidate order is the ring's preference list for its
// netlist fingerprint — the same fingerprint the workers key their
// result caches by, so repeat requests land on the worker that already
// holds the answer (cache affinity), and a retry of a re-forwarded
// duplicate hits the survivor's cache instead of recomputing. Workers
// whose breaker is open, whose liveness state is ejected, or who sit in
// integrity quarantine are skipped; a transport error or worker 5xx
// records a breaker failure and moves to the next candidate after a
// jittered backoff; a worker 429/503 (busy or draining) moves on
// without a breaker mark — refusing work politely is healthy behavior.
// A 4xx is permanent: the request itself is bad, and the worker's
// verdict is proxied to the client verbatim.
//
// Every 200 is oracle-verified (verify.go) before it wins: an answer
// the oracle rejects — or a 200 whose body does not even parse, a
// corrupt frame — charges the worker an integrity strike and fails
// over exactly like a transport error. The strike axis is deliberately
// separate from the breaker: the transport worked, so the breaker sees
// a success, while the quarantine machine counts the lie.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/fleet"
)

// workerResponse mirrors hgpartd's partitionResponse, plus the worker
// field the coordinator stamps on before answering the client.
type workerResponse struct {
	JobID      string `json:"job_id"`
	Modules    int    `json:"modules"`
	Nets       int    `json:"nets"`
	Cut        int    `json:"cut"`
	Tier       int    `json:"tier"`
	TierName   string `json:"tier_name"`
	Degraded   bool   `json:"degraded"`
	Assignment []int  `json:"assignment"`
	WallMS     int64  `json:"wall_ms"`
	Worker     string `json:"worker,omitempty"`
}

// permanentError carries a worker's 4xx verdict: the request itself is
// bad and no amount of retrying will change that.
type permanentError struct {
	status int
	body   string
}

func (e *permanentError) Error() string {
	return fmt.Sprintf("worker answered %d: %s", e.status, e.body)
}

// forward routes one job across the fleet until a worker answers with
// a verified result, the deadline passes, or a worker rules the
// request permanently bad. It returns the winning worker's response
// and id.
func (c *coord) forward(ctx context.Context, job fleet.Job, vs *verifySpec, deadline time.Time) (workerResponse, string, error) {
	return c.forwardFrom(ctx, job, vs, deadline, 0)
}

// forwardFrom is forward with the candidate walk rotated by offset, so
// a hedge starts at the failover worker instead of colliding with the
// primary attempt on the same candidate.
func (c *coord) forwardFrom(ctx context.Context, job fleet.Job, vs *verifySpec, deadline time.Time, offset int) (workerResponse, string, error) {
	var lastErr error = fmt.Errorf("no workers registered")
	for attempt := 0; attempt < c.cfg.retries; attempt++ {
		if ctx.Err() != nil {
			return workerResponse{}, "", fmt.Errorf("deadline exhausted after %d attempt(s): %w", attempt, lastErr)
		}
		worker, ok := c.pickWorker(job.Key.Fingerprint, attempt+offset)
		if !ok {
			// Nobody routable right now (empty fleet, everyone ejected,
			// quarantined, or breaker-open). Back off and re-look: a
			// heartbeat can rejoin a worker, a cooldown can admit a
			// probe, a verified probe streak can lift a quarantine.
			if !c.cfg.backoff.Sleep(ctx, attempt) {
				return workerResponse{}, "", fmt.Errorf("deadline exhausted waiting for a routable worker: %w", lastErr)
			}
			continue
		}
		c.handoff.Assign(job.ID, worker)
		if attempt > 0 {
			c.rerouted.Add(1)
		}
		resp, err := c.forwardOnce(ctx, worker, job, deadline)
		if err == nil {
			if verr := vs.verify(resp); verr != nil {
				// The transport worked; the answer is a lie. Success on
				// the breaker axis, a strike on the integrity axis, and
				// the answer is never delivered — fail over.
				c.registry.Record(worker, true)
				c.strike(worker, verr)
				lastErr = fmt.Errorf("%s: %w", worker, verr)
				if !c.cfg.backoff.Sleep(ctx, attempt) {
					return workerResponse{}, "", fmt.Errorf("deadline exhausted after %d attempt(s): %w", attempt+1, lastErr)
				}
				continue
			}
			c.registry.Record(worker, true)
			c.verified.Add(1)
			return resp, worker, nil
		}
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			// Canceled from above — the hedge rival already won, or the
			// client vanished. Not the worker's fault on any axis.
			c.registry.Record(worker, true)
			return workerResponse{}, "", fmt.Errorf("forward canceled: %w", ctx.Err())
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			// The worker answered authoritatively; it is healthy.
			c.registry.Record(worker, true)
			return workerResponse{}, "", err
		}
		var garbled *garbledError
		if errors.As(err, &garbled) {
			// A 200 whose body does not parse is a corrupt frame: the
			// transport delivered it, so no breaker penalty, but the
			// integrity axis counts it like an oracle rejection.
			c.registry.Record(worker, true)
			c.strike(worker, err)
		} else if isRefusal(err) {
			// 429/503: busy or draining, not broken. No breaker mark.
			c.registry.Record(worker, true)
		} else {
			c.registry.Record(worker, false)
		}
		lastErr = fmt.Errorf("%s: %w", worker, err)
		if !c.cfg.backoff.Sleep(ctx, attempt) {
			return workerResponse{}, "", fmt.Errorf("deadline exhausted after %d attempt(s): %w", attempt+1, lastErr)
		}
	}
	return workerResponse{}, "", fmt.Errorf("all %d attempt(s) failed: %w", c.cfg.retries, lastErr)
}

// pickWorker walks the ring's preference order for key and returns the
// first worker the registry will route to, rotated by attempt so a
// retry prefers the next candidate over re-hitting the one that just
// failed (its breaker may not have tripped yet).
func (c *coord) pickWorker(key uint64, attempt int) (string, bool) {
	candidates := c.ring.Lookup(key, c.ring.Len())
	if len(candidates) == 0 {
		return "", false
	}
	for i := 0; i < len(candidates); i++ {
		id := candidates[(attempt+i)%len(candidates)]
		if c.registry.Allow(id) {
			return id, true
		}
	}
	return "", false
}

// refusalError marks a worker 429/503: retry elsewhere, no breaker
// penalty.
type refusalError struct{ status int }

func (e *refusalError) Error() string { return fmt.Sprintf("worker busy (HTTP %d)", e.status) }

func isRefusal(err error) bool {
	var r *refusalError
	return errors.As(err, &r)
}

// garbledError marks a 200 whose body failed to parse — a corrupt
// frame, charged to the worker's integrity record.
type garbledError struct{ err error }

func (e *garbledError) Error() string { return fmt.Sprintf("garbled worker response: %v", e.err) }
func (e *garbledError) Unwrap() error { return e.err }

// forwardOnce sends the job to one worker, honoring the fault-injection
// points that shape network failures: a drop rule fails the attempt
// without sending, a partial rule truncates the response mid-read.
func (c *coord) forwardOnce(ctx context.Context, worker string, job fleet.Job, deadline time.Time) (workerResponse, error) {
	addr, ok := c.registry.Addr(worker)
	if !ok {
		return workerResponse{}, fmt.Errorf("worker %s vanished from the registry", worker)
	}
	idx := int(c.fwdCounter.Add(1) - 1)
	faultinject.Fire(faultinject.PointFleetForward, idx)
	if faultinject.ShouldDrop(faultinject.PointFleetForward, idx) {
		return workerResponse{}, fmt.Errorf("injected connection drop (forward %d)", idx)
	}

	target := "http://" + addr + "/partition"
	if job.Query != "" {
		target += "?" + job.Query
	}
	rctx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, target, strings.NewReader(job.Netlist))
	if err != nil {
		return workerResponse{}, err
	}
	req.Header.Set("X-Request-Deadline", strconv.FormatInt(deadline.UnixMilli(), 10))
	resp, err := c.client.Do(req)
	if err != nil {
		return workerResponse{}, err
	}
	defer resp.Body.Close()

	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.maxBody+1<<20))
	if err != nil {
		return workerResponse{}, fmt.Errorf("reading worker response: %w", err)
	}
	if faultinject.ShouldPartial(faultinject.PointFleetForward, idx) {
		body = body[:len(body)/2] // the worker died mid-reply
	}
	if faultinject.ShouldCorrupt(faultinject.PointFleetForward, idx) && len(body) > 0 {
		// Deterministic rot on the wire. The first byte, not a middle
		// one: JSON decoders coerce invalid UTF-8 inside strings without
		// erroring, so a mid-body flip can be semantically invisible —
		// breaking the leading structural byte is always detectable.
		body[0] ^= 0xFF
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		var wr workerResponse
		if err := json.Unmarshal(body, &wr); err != nil {
			// Truncated or garbled reply: retryable, and charged as a
			// corrupt frame on the integrity axis by the forward loop.
			return workerResponse{}, &garbledError{err: err}
		}
		return wr, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return workerResponse{}, &refusalError{status: resp.StatusCode}
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		return workerResponse{}, &permanentError{status: resp.StatusCode, body: string(body)}
	default:
		return workerResponse{}, fmt.Errorf("worker answered HTTP %d", resp.StatusCode)
	}
}
