package main

// Answer verification: the coordinator's trust boundary. A worker
// answer is never delivered to a client, cached in the handoff queue's
// completion memory, or journaled as done until the verification oracle
// has recomputed its claimed cut from scratch (O(pins), from the raw
// netlist bytes the coordinator already holds) and re-checked the
// balance/fixed constraint the request asked for. A worker that fails
// the check is charged an integrity strike (see internal/fleet
// quarantine.go) and the job fails over to the next ring candidate —
// a Byzantine worker can waste our time, never corrupt an answer.
//
// The constraint is reconstructed coordinator-side exactly the way
// hgpartd builds it (inline netlist directives, overridden by the fixed
// query parameter, plus epsilon), through the same shared
// fasthgp.ParseFixedSpec parser, so the verified contract is the solved
// contract. Degraded portfolio answers also satisfy the constraint —
// every tier's candidate is certified before the daemon returns it —
// so verification applies unconditionally.

import (
	"bytes"
	"fmt"
	"net/url"
	"strconv"

	"fasthgp"
	"fasthgp/internal/fleet"
)

// verifySpec is everything needed to judge a worker's answer to one
// request: the parsed hypergraph and the reconstructed constraint.
type verifySpec struct {
	h          *fasthgp.Hypergraph
	constraint fasthgp.Constraint
}

// newVerifySpec parses the request into its verification contract. A
// parse or constraint error means the request itself is bad (the
// caller answers 400), not that a worker misbehaved.
func newVerifySpec(format string, raw []byte, q url.Values) (*verifySpec, error) {
	h, inlineFixed, err := parseNetlistFixed(format, raw)
	if err != nil {
		return nil, err
	}
	constraint := fasthgp.Constraint{FixedSide: inlineFixed}
	if v := q.Get("epsilon"); v != "" {
		eps, err := strconv.ParseFloat(v, 64)
		if err != nil || eps < 0 {
			return nil, fmt.Errorf("bad epsilon %q", v)
		}
		constraint.Epsilon = eps
	}
	if v := q.Get("fixed"); v != "" {
		fixed, err := fasthgp.ParseFixedSpec(v, h.NumVertices())
		if err != nil {
			return nil, err
		}
		constraint.FixedSide = fixed
	}
	if err := constraint.Validate(h.NumVertices(), 2); err != nil {
		return nil, err
	}
	return &verifySpec{h: h, constraint: constraint}, nil
}

// verifySpecForJob rebuilds the contract for a WAL-recovered or
// reclaimed job from its stored raw request.
func verifySpecForJob(job fleet.Job) (*verifySpec, error) {
	q, err := url.ParseQuery(job.Query)
	if err != nil {
		return nil, err
	}
	return newVerifySpec(job.Format, []byte(job.Netlist), q)
}

// verify judges one worker answer against the contract: the assignment
// must cover every module with a valid side, the oracle must recompute
// exactly the claimed cut, and the answer must satisfy the constraint.
func (vs *verifySpec) verify(resp workerResponse) error {
	n := vs.h.NumVertices()
	if len(resp.Assignment) != n {
		return fmt.Errorf("assignment has %d entries, netlist has %d modules", len(resp.Assignment), n)
	}
	p := fasthgp.NewBipartition(n)
	for v, side := range resp.Assignment {
		switch side {
		case 0:
			p.Assign(v, fasthgp.Left)
		case 1:
			p.Assign(v, fasthgp.Right)
		default:
			return fmt.Errorf("assignment[%d] = %d, want 0 or 1", v, side)
		}
	}
	if _, err := fasthgp.VerifyCut(vs.h, p, resp.Cut); err != nil {
		return fmt.Errorf("oracle rejected the cut: %w", err)
	}
	if !vs.constraint.IsZero() {
		if _, err := fasthgp.VerifyConstraint(vs.h, p, vs.constraint); err != nil {
			return fmt.Errorf("oracle rejected the constraint: %w", err)
		}
	}
	return nil
}

// parseNetlistFixed reads a netlist in the named wire format along with
// any inline fixed-vertex directives (nets format only; nil otherwise)
// — the same parse hgpartd performs, so coordinator and worker agree on
// both the fingerprint and the constraint.
func parseNetlistFixed(format string, raw []byte) (*fasthgp.Hypergraph, []int8, error) {
	switch format {
	case "", "nets":
		return fasthgp.ReadNetlistFixed(bytes.NewReader(raw))
	case "hgr":
		h, err := fasthgp.ReadHMetisStream(bytes.NewReader(raw))
		return h, nil, err
	default:
		return nil, nil, fmt.Errorf("unknown format %q", format)
	}
}
