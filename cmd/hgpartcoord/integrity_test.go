package main

// End-to-end result-integrity tests: Byzantine answers are never
// delivered, liars are quarantined and readmitted by verified probes,
// hedging beats a slow worker, single-flight collapses duplicates,
// corrupt frames quarantine, a coordinator double-failure re-enqueues
// exactly once, and the scrubber degrades /healthz on WAL rot.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/fleet"
	"fasthgp/internal/resilience"
)

// testCoordQ is testCoord with an explicit quarantine config.
func testCoordQ(now func() time.Time, q fleet.QuarantineConfig) *coord {
	cfg := coordConfig{
		maxBody:      1 << 20,
		reqTimeout:   5 * time.Second,
		retries:      6,
		backoff:      fleet.BackoffConfig{Base: time.Millisecond, Cap: 5 * time.Millisecond, Seed: 1},
		heartbeatTTL: time.Second,
		ejectAfter:   2,
		replicas:     16,
		drainTimeout: time.Second,
	}
	return newCoord(cfg, fleet.RegistryConfig{
		HeartbeatTTL: time.Second,
		EjectAfter:   2,
		Breakers:     resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Quarantine:   q,
		Now:          now,
	}, io.Discard)
}

// distinctNets returns a netlist whose hypergraph *structure* (not
// just net names) differs per i, so each gets its own fingerprint and
// the ring spreads them across both workers.
func distinctNets(i int) string {
	var b strings.Builder
	b.WriteString(testNets)
	for j := 0; j <= i; j++ {
		fmt.Fprintf(&b, "module x%d\n", j)
	}
	return b.String()
}

// postUntilQuarantined posts distinct netlists until the named worker
// is quarantined, asserting every 200 along the way is oracle-valid.
func postUntilQuarantined(t *testing.T, c *coord, h http.Handler, liar string) {
	t.Helper()
	for i := 0; i < 50; i++ {
		body := distinctNets(i)
		rec, resp := postNetlist(t, h, "", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("netlist %d = %d: %s", i, rec.Code, rec.Body)
		}
		if resp.Worker == liar {
			t.Fatalf("netlist %d delivered by the Byzantine worker %s", i, liar)
		}
		// The delivered answer must itself pass the oracle.
		vs, err := newVerifySpec("", []byte(body), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := vs.verify(resp); err != nil {
			t.Fatalf("netlist %d: delivered answer fails the oracle: %v", i, err)
		}
		if c.registry.Quarantined(liar) {
			return
		}
	}
	t.Fatalf("worker %s never quarantined after 50 requests (invalid=%d quarantines=%d snapshot=%+v)",
		liar, c.invalid.Load(), c.quarantines.Load(), c.registry.Snapshot())
}

// TestByzantineNeverDeliveredAndQuarantined: a worker that lies about
// its cut never gets an answer delivered, accumulates integrity
// strikes, and is quarantined — while the honest worker keeps serving.
func TestByzantineNeverDeliveredAndQuarantined(t *testing.T) {
	c := testCoordQ(nil, fleet.QuarantineConfig{
		Threshold: 3, Window: time.Minute, ReadmitAfter: 2, ProbeInterval: time.Hour,
	})
	h := c.handler()
	liar, honest := newFakeWorker(t, "liar"), newFakeWorker(t, "honest")
	liar.setLie(true)
	register(t, h, "liar", liar.addr())
	register(t, h, "honest", honest.addr())

	postUntilQuarantined(t, c, h, "liar")

	if got := c.invalid.Load(); got < 3 {
		t.Errorf("invalid answers = %d, want >= 3 (quarantine threshold)", got)
	}
	if got := c.quarantines.Load(); got != 1 {
		t.Errorf("quarantine transitions = %d, want 1", got)
	}
	var snapState string
	for _, w := range c.registry.Snapshot() {
		if w.ID == "liar" {
			snapState = w.State
		}
	}
	if snapState != "quarantined" {
		t.Errorf("liar snapshot state = %q, want quarantined", snapState)
	}

	// Quarantined means out of rotation: more traffic never touches it.
	seenBefore := liar.seen()
	for i := 0; i < 5; i++ {
		rec, resp := postNetlist(t, h, "", distinctNets(100+i))
		if rec.Code != http.StatusOK || resp.Worker != "honest" {
			t.Fatalf("post-quarantine request %d = %d via %q", i, rec.Code, resp.Worker)
		}
	}
	if liar.seen() != seenBefore {
		t.Errorf("quarantined worker saw %d more request(s)", liar.seen()-seenBefore)
	}
}

// TestQuarantineProbeReadmission: probes replay the last verified job
// to a quarantined worker; while it still lies the probes fail and it
// stays out, and once fixed a streak of verified probes readmits it.
func TestQuarantineProbeReadmission(t *testing.T) {
	c := testCoordQ(nil, fleet.QuarantineConfig{
		Threshold: 2, Window: time.Minute, ReadmitAfter: 2, ProbeInterval: time.Millisecond,
	})
	h := c.handler()
	liar, honest := newFakeWorker(t, "liar"), newFakeWorker(t, "honest")
	liar.setLie(true)
	register(t, h, "liar", liar.addr())
	register(t, h, "honest", honest.addr())

	postUntilQuarantined(t, c, h, "liar")
	if c.probeMat.Load() == nil {
		t.Fatal("no probe material despite verified deliveries")
	}

	// Still lying: probes fire but never readmit.
	for i := 0; i < 3; i++ {
		c.sweep()
		time.Sleep(5 * time.Millisecond)
	}
	if c.probes.Load() == 0 {
		t.Fatal("no probes fired at the quarantined worker")
	}
	if !c.registry.Quarantined("liar") {
		t.Fatal("still-lying worker readmitted")
	}

	// Fixed: a streak of verified probes lifts the quarantine.
	liar.setLie(false)
	deadline := time.Now().Add(5 * time.Second)
	for c.registry.Quarantined("liar") {
		if time.Now().After(deadline) {
			t.Fatalf("fixed worker never readmitted (probes=%d)", c.probes.Load())
		}
		c.sweep()
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.readmitted.Load(); got != 1 {
		t.Errorf("readmissions = %d, want 1", got)
	}
	if !c.registry.Allow("liar") {
		t.Error("readmitted worker still unroutable")
	}
}

// TestHedgedDispatchBeatsSlowWorker: with hedging on, a request whose
// primary has gone slow is answered by the failover worker well inside
// the slow worker's latency.
func TestHedgedDispatchBeatsSlowWorker(t *testing.T) {
	c := testCoord(nil)
	c.cfg.hedgeDelay = 20 * time.Millisecond
	h := c.handler()
	w1, w2 := newFakeWorker(t, "w1"), newFakeWorker(t, "w2")
	register(t, h, "w1", w1.addr())
	register(t, h, "w2", w2.addr())

	// Discover the primary for this netlist, then slow it down.
	rec, resp := postNetlist(t, h, "", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup = %d: %s", rec.Code, rec.Body)
	}
	primary := resp.Worker
	other := "w1"
	slow := w1
	if primary == "w1" {
		other, slow = "w2", w1
	} else {
		slow = w2
	}
	slow.setDelay(500 * time.Millisecond)

	start := time.Now()
	rec, resp = postNetlist(t, h, "", testNets)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged request = %d: %s", rec.Code, rec.Body)
	}
	if resp.Worker != other {
		t.Errorf("hedged request answered by %q, want failover %q", resp.Worker, other)
	}
	if elapsed >= 450*time.Millisecond {
		t.Errorf("hedged request took %v, want well under the slow worker's 500ms", elapsed)
	}
	if c.hedges.Load() == 0 {
		t.Error("no hedge fired")
	}
	if c.hedgeWins.Load() == 0 {
		t.Error("hedge never won despite a slow primary")
	}
}

// TestSingleFlightCollapse: concurrent identical requests share one
// worker computation; every client still gets the verified answer.
func TestSingleFlightCollapse(t *testing.T) {
	c := testCoord(nil)
	h := c.handler()
	w := newFakeWorker(t, "w1")
	w.setDelay(150 * time.Millisecond)
	register(t, h, "w1", w.addr())

	type result struct {
		code int
		cut  int
	}
	results := make(chan result, 5)
	post := func() {
		rec, resp := postNetlist(t, h, "", testNets)
		results <- result{rec.Code, resp.Cut}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); post() }() // the leader
	time.Sleep(40 * time.Millisecond)       // let it own the flight
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); post() }()
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.code != http.StatusOK || r.cut != 2 {
			t.Errorf("collapsed request = (%d, cut %d), want (200, 2)", r.code, r.cut)
		}
	}
	if got := w.seen(); got != 1 {
		t.Errorf("worker saw %d request(s), want 1 (single-flight)", got)
	}
	if got := c.collapsed.Load(); got != 4 {
		t.Errorf("collapsed = %d, want 4", got)
	}
}

// TestCorruptFramesQuarantine: wire corruption on every forward makes
// each 200 unparseable; the coordinator never delivers garbage, charges
// integrity strikes, and quarantines the only worker rather than serve
// a corrupt answer.
func TestCorruptFramesQuarantine(t *testing.T) {
	defer faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointFleetForward, Index: faultinject.AnyIndex, Kind: faultinject.KindCorrupt},
	}})()
	c := testCoordQ(nil, fleet.QuarantineConfig{
		Threshold: 3, Window: time.Minute, ReadmitAfter: 2, ProbeInterval: time.Hour,
	})
	h := c.handler()
	w := newFakeWorker(t, "w1")
	register(t, h, "w1", w.addr())

	rec, _ := postNetlist(t, h, "", testNets)
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 (no verifiable answer exists)", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "garbled") {
		t.Errorf("error does not name the corrupt frame: %s", rec.Body)
	}
	if got := c.ok200.Load(); got != 0 {
		t.Errorf("delivered %d corrupt answer(s), want 0", got)
	}
	if got := c.invalid.Load(); got < 3 {
		t.Errorf("integrity strikes = %d, want >= 3", got)
	}
	if !c.registry.Quarantined("w1") {
		t.Error("worker serving corrupt frames not quarantined")
	}
}

// TestDoubleFailureHandoffExactlyOnce: a coordinator killed after
// accepting a job, restarted, killed again mid-reclaim (no workers ever
// came), and restarted once more still holds exactly one pending copy —
// and completes it exactly once when a worker finally registers.
func TestDoubleFailureHandoffExactlyOnce(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "coord.wal")

	// Life 1: accept, journal, crash before any outcome.
	w1, _, _, _, err := openCoordWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.append(coordWALRecord{Type: "accepted", JobID: "j3",
		Netlist: testNets, Fingerprint: 3}); err != nil {
		t.Fatal(err)
	}
	w1.close()

	// Life 2: replay and re-enqueue, but no worker ever registers; the
	// coordinator "dies" again (drain) mid-reclaim.
	w2, maxSeq, replayed, pending, err := openCoordWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 {
		t.Fatalf("life 2 pending = %d, want 1", len(pending))
	}
	c2 := testCoord(nil)
	c2.attachWAL(w2, maxSeq, replayed)
	c2.requeue(pending)
	time.Sleep(30 * time.Millisecond) // the detached runner spins on an empty fleet
	c2.draining.Store(true)
	time.Sleep(100 * time.Millisecond) // let the runner observe drain and park
	w2.close()

	// Life 3: the job is still pending exactly once — the aborted
	// reclaim journaled no outcome and no duplicate accepted record.
	w3, maxSeq, replayed, pending, err := openCoordWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "j3" {
		t.Fatalf("life 3 pending = %+v, want exactly [j3]", pending)
	}
	accepted := 0
	for _, rec := range replayed {
		if rec.Type == "accepted" && rec.JobID == "j3" {
			accepted++
		}
	}
	if accepted != 1 {
		t.Fatalf("life 3 sees %d accepted record(s) for j3, want 1", accepted)
	}
	c3 := testCoord(nil)
	c3.attachWAL(w3, maxSeq, replayed)
	c3.requeue(pending)
	h := c3.handler()
	fw := newFakeWorker(t, "w1")
	register(t, h, "w1", fw.addr())

	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, ok := c3.jobs.Get("j3"); ok && j.Status == "done" {
			break
		}
		if time.Now().After(deadline) {
			j, _ := c3.jobs.Get("j3")
			t.Fatalf("job never completed in life 3: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := fw.seen(); got != 1 {
		t.Errorf("worker ran the job %d time(s), want exactly 1", got)
	}
	time.Sleep(20 * time.Millisecond) // done record is fsynced right after the status flip
	w3.close()

	// Life 4: nothing pending; the ledger holds the single outcome.
	w4, _, replayed, pending, err := openCoordWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w4.close()
	if len(pending) != 0 {
		t.Fatalf("life 4 pending = %d, want 0", len(pending))
	}
	done := 0
	for _, rec := range replayed {
		if rec.Type == "done" && rec.JobID == "j3" {
			done++
		}
	}
	if done != 1 {
		t.Errorf("life 4 sees %d done record(s) for j3, want 1", done)
	}
}

// TestScrubDegradesHealthOnRot: the scrubber reports a clean WAL as
// healthy, and flags on-disk rot appearing after open — degrading
// /healthz and surfacing the report on /stats.
func TestScrubDegradesHealthOnRot(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "coord.wal")
	w, maxSeq, replayed, _, err := openCoordWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	c := testCoord(nil)
	c.attachWAL(w, maxSeq, replayed)
	if err := w.append(coordWALRecord{Type: "accepted", JobID: "j1", Netlist: testNets, Fingerprint: 1}); err != nil {
		t.Fatal(err)
	}
	h := c.handler()

	healthz := func() map[string]any {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var m map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
			t.Fatalf("healthz body: %v", err)
		}
		return m
	}

	c.runScrub()
	if m := healthz(); m["status"] != "ok" {
		t.Fatalf("clean WAL healthz = %v (reasons %v)", m["status"], m["degraded_reasons"])
	}

	// Rot lands after open: a torn tail the next crash-replay would hit.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xDE, 0xAD, 0xBE}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c.runScrub()
	m := healthz()
	if m["status"] != "degraded" {
		t.Fatalf("rotted WAL healthz = %v, want degraded", m["status"])
	}
	found := false
	if reasons, ok := m["degraded_reasons"].([]any); ok {
		for _, r := range reasons {
			if s, _ := r.(string); strings.Contains(s, "wal scrub") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no wal-scrub degraded reason: %v", m["degraded_reasons"])
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if !strings.Contains(rec.Body.String(), "wal_scrub") {
		t.Errorf("stats missing wal_scrub: %s", rec.Body)
	}
}
