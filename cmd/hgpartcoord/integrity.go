package main

// Integrity bookkeeping: quarantine strikes, readmission probes, and
// the WAL scrubber.
//
// Probes: a quarantined worker is excluded from routing, so it can
// never redeem itself through client traffic. Each sweep the
// coordinator claims at most one probe slot per quarantined worker
// (spaced by the registry's probe interval) and replays the most
// recent verified job directly to it, off the request path. The oracle
// judges the probe answer like any other; the registry readmits the
// worker after the configured streak of verified probes. Probe
// material is whatever verified last — it needs no freshness, only a
// known-checkable request, and the worker's result cache makes
// repeated probes nearly free for an honest worker.
//
// Scrub: with a WAL attached, a background pass re-walks its CRC
// frames on a timer and publishes the report. Bit rot is detected
// while the process is healthy — not at the next crash's replay, when
// the data is needed and the operator is busy — and degrades /healthz
// so fleet monitoring sees it.

import (
	"context"
	"fmt"
	"time"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/fleet"
)

// strike charges one invalid answer (oracle-rejected or corrupt frame)
// to a worker and logs the quarantine transition when it tips.
func (c *coord) strike(worker string, cause error) {
	c.invalid.Add(1)
	if c.registry.RecordInvalid(worker) {
		c.quarantines.Add(1)
		fmt.Fprintf(c.stdout, "hgpartcoord: worker %s quarantined: invalid answers (last: %v)\n", worker, cause)
	}
}

// probeMaterial is a known-verifiable request kept for quarantine
// probes: the last job whose answer passed the oracle.
type probeMaterial struct {
	job fleet.Job
	vs  *verifySpec
}

// keepProbeMaterial remembers a verified job as future probe material.
func (c *coord) keepProbeMaterial(job fleet.Job, vs *verifySpec) {
	c.probeMat.Store(&probeMaterial{job: job, vs: vs})
}

// probeQuarantined claims probe slots for quarantined workers and
// launches one probe goroutine per claim. Called from the sweep loop.
func (c *coord) probeQuarantined() {
	mat := c.probeMat.Load()
	if mat == nil {
		return // nothing verified yet; nothing checkable to replay
	}
	for _, id := range c.registry.QuarantinedIDs() {
		if !c.registry.ClaimProbe(id) {
			continue // in flight or inside the spacing interval
		}
		go c.probeWorker(id, mat)
	}
}

// probeWorker replays the probe job to one quarantined worker and
// reports the oracle's verdict to the registry.
func (c *coord) probeWorker(id string, mat *probeMaterial) {
	c.probes.Add(1)
	deadline := time.Now().Add(c.cfg.reqTimeout)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	resp, err := c.forwardOnce(ctx, id, mat.job, deadline)
	valid := err == nil && mat.vs.verify(resp) == nil
	if c.registry.RecordProbe(id, valid) {
		c.readmitted.Add(1)
		fmt.Fprintf(c.stdout, "hgpartcoord: worker %s readmitted after verified probes\n", id)
	}
}

// runScrub performs one scrub pass over the WAL and publishes the
// result. No-op without a WAL.
func (c *coord) runScrub() {
	if c.wal == nil {
		return
	}
	rep, err := c.wal.scrub()
	st := &checkpoint.ScrubStatus{Report: rep, At: time.Now()}
	if err != nil {
		st.Err = err.Error()
	}
	if !st.Healthy() {
		fmt.Fprintf(c.stdout, "hgpartcoord: WAL scrub unhealthy: %s\n", st.Problem())
	}
	c.lastScrub.Store(st)
}

// scrubLoop runs runScrub on a timer until stop closes.
func (c *coord) scrubLoop(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			c.runScrub()
		}
	}
}
