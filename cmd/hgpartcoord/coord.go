package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fasthgp/internal/checkpoint"
	"fasthgp/internal/fleet"
)

// coordConfig is the coordinator's tunable surface, set by flags.
type coordConfig struct {
	maxBody       int64         // request-body cap; beyond it 413
	reqTimeout    time.Duration // per-request wall cap (propagated to workers)
	retries       int           // max forward attempts per request
	backoff       fleet.BackoffConfig
	heartbeatTTL  time.Duration // silence moving a worker active -> suspect
	ejectAfter    int           // TTLs of silence before ejection
	replicas      int           // ring virtual nodes per worker
	drainTimeout  time.Duration
	hedgeDelay    time.Duration // delayed-duplicate threshold (0 = hedging off)
	scrubInterval time.Duration // WAL scrub cadence (0 = scrubbing off)
}

// coord is the coordinator state: the worker registry (liveness +
// breakers), the consistent-hash ring, the handoff ledger, the job
// table, and the optional WAL.
type coord struct {
	cfg      coordConfig
	registry *fleet.Registry
	ring     *fleet.Ring
	handoff  *fleet.HandoffQueue
	jobs     *fleet.JobTable
	wal      *coordWAL // nil = WAL disabled
	client   *http.Client
	stdout   io.Writer
	begin    time.Time

	draining   atomic.Bool
	fwdCounter atomic.Int64 // fault-injection index for fleet.forward

	flightMu sync.Mutex
	flights  map[fleet.JobKey]*flight // live single-flight computations

	probeMat  atomic.Pointer[probeMaterial]          // last verified job, replayed as quarantine probe
	lastScrub atomic.Pointer[checkpoint.ScrubStatus] // latest WAL scrub outcome

	requests    atomic.Int64
	ok200       atomic.Int64
	failed      atomic.Int64
	rerouted    atomic.Int64 // forwards answered by a non-primary worker
	verified    atomic.Int64 // worker answers that passed the oracle
	invalid     atomic.Int64 // worker answers the oracle rejected (never delivered)
	quarantines atomic.Int64 // quarantine transitions
	probes      atomic.Int64 // readmission probes sent
	readmitted  atomic.Int64 // quarantine releases
	hedges      atomic.Int64 // delayed duplicates fired
	hedgeWins   atomic.Int64 // races won by the hedge
	collapsed   atomic.Int64 // requests answered by another flight's computation
	walErrs     atomic.Int64
	walLastErr  atomic.Value // string
}

func newCoord(cfg coordConfig, registryCfg fleet.RegistryConfig, stdout io.Writer) *coord {
	if cfg.retries < 1 {
		cfg.retries = 1
	}
	return &coord{
		cfg:      cfg,
		registry: fleet.NewRegistry(registryCfg),
		ring:     fleet.NewRing(cfg.replicas),
		handoff:  fleet.NewHandoffQueue(0),
		jobs:     fleet.NewJobTable(),
		flights:  make(map[fleet.JobKey]*flight),
		client:   &http.Client{}, // per-request deadlines come from ctx
		stdout:   stdout,
		begin:    time.Now(),
	}
}

// attachWAL wires a recovered WAL in: job ids continue after the dead
// process's and replayed outcomes answer on /jobs/{id}. Pending jobs
// are re-enqueued separately (requeue) once the handler is serving.
func (c *coord) attachWAL(w *coordWAL, maxSeq int64, replayed []coordWALRecord) {
	c.wal = w
	c.jobs.ContinueFrom(maxSeq)
	state := make(map[string]fleet.JobInfo)
	var order []string
	for _, rec := range replayed {
		j, seen := state[rec.JobID]
		if !seen {
			order = append(order, rec.JobID)
			j = fleet.JobInfo{ID: rec.JobID, Status: "accepted"}
		}
		switch rec.Type {
		case "done":
			j.Status, j.Cut, j.TierName, j.Degraded, j.WallMS, j.Worker = "done", rec.Cut, rec.TierName, rec.Degraded, rec.WallMS, rec.Worker
		case "failed":
			j.Status, j.Error = "failed", rec.Error
		}
		state[rec.JobID] = j
	}
	for _, id := range order {
		c.jobs.Restore(state[id])
	}
}

// requeue re-enqueues WAL-recovered pending jobs as detached handoffs.
// Each runs in its own goroutine that waits (with backoff) for workers
// to register — recovered work is never dropped, only delayed.
func (c *coord) requeue(pending []fleet.Job) {
	for _, job := range pending {
		c.jobs.Restore(fleet.JobInfo{ID: job.ID, Status: "requeued", Requeued: true})
		if prev, dup := c.handoff.Admit(job); dup {
			// The at-least-once duplicate: an identical job already
			// completed, answer from memory without running.
			c.finishFromMemory(job.ID, prev)
			continue
		}
		go c.runDetached(job)
	}
}

// finishFromMemory marks a deduplicated job done with the remembered
// outcome of its key's first completion.
func (c *coord) finishFromMemory(jobID string, d fleet.Done) {
	c.jobs.Update(jobID, func(j *fleet.JobInfo) {
		j.Status, j.Cut, j.TierName, j.Degraded, j.Worker = "done", d.Cut, d.TierName, d.Degraded, d.Worker
	})
	c.walAppend(coordWALRecord{Type: "done", JobID: jobID,
		Cut: d.Cut, TierName: d.TierName, Worker: d.Worker, Degraded: d.Degraded})
}

func (c *coord) walAppend(rec coordWALRecord) {
	if c.wal == nil {
		return
	}
	if err := c.wal.append(rec); err != nil {
		c.walErrs.Add(1)
		c.walLastErr.Store(err.Error())
	}
}

// sweep advances the liveness state machine once: newly ejected
// workers leave the ring and their detached handoff jobs are reclaimed
// and re-forwarded to survivors. It also fires readmission probes at
// quarantined workers (integrity.go).
func (c *coord) sweep() {
	defer c.probeQuarantined()
	for _, id := range c.registry.Sweep() {
		c.ring.Remove(id)
		reclaimed := c.handoff.Reclaim(id)
		fmt.Fprintf(c.stdout, "hgpartcoord: ejected %s (heartbeat silence), reclaiming %d handoff job(s)\n", id, len(reclaimed))
		for _, job := range reclaimed {
			job.Worker = ""
			if prev, dup := c.handoff.Admit(job); dup {
				c.finishFromMemory(job.ID, prev)
				continue
			}
			c.jobs.Update(job.ID, func(j *fleet.JobInfo) { j.Status, j.Requeued = "requeued", true })
			go c.runDetached(job)
		}
	}
}

// sweepLoop runs sweep until stop closes.
func (c *coord) sweepLoop(interval time.Duration, stop <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			c.sweep()
		}
	}
}

// handler builds the route table behind a panic-recovery middleware.
func (c *coord) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/partition", c.handlePartition)
	mux.HandleFunc("/register", c.handleRegister)
	mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/deregister", c.handleDeregister)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/stats", c.handleStats)
	mux.HandleFunc("/jobs/", c.handleJob)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
			}
		}()
		mux.ServeHTTP(w, r)
	})
}

// workerMsg is the body of /register, /heartbeat and /deregister.
type workerMsg struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

func (c *coord) handleRegister(w http.ResponseWriter, r *http.Request) {
	var msg workerMsg
	if !decodeWorkerMsg(w, r, &msg) {
		return
	}
	if msg.Addr == "" {
		writeError(w, http.StatusBadRequest, "register needs an addr")
		return
	}
	rejoined := c.registry.Upsert(msg.ID, msg.Addr)
	c.ring.Add(msg.ID)
	if rejoined {
		fmt.Fprintf(c.stdout, "hgpartcoord: worker %s rejoined via register\n", msg.ID)
	} else {
		fmt.Fprintf(c.stdout, "hgpartcoord: worker %s registered at %s\n", msg.ID, msg.Addr)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"heartbeat_interval_ms": (c.cfg.heartbeatTTL / 3).Milliseconds(),
	})
}

func (c *coord) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var msg workerMsg
	if !decodeWorkerMsg(w, r, &msg) {
		return
	}
	known, rejoined := c.registry.Heartbeat(msg.ID)
	if !known {
		writeError(w, http.StatusNotFound, "unknown worker; re-register")
		return
	}
	if rejoined {
		c.ring.Add(msg.ID)
		fmt.Fprintf(c.stdout, "hgpartcoord: worker %s rejoined via heartbeat\n", msg.ID)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *coord) handleDeregister(w http.ResponseWriter, r *http.Request) {
	var msg workerMsg
	if !decodeWorkerMsg(w, r, &msg) {
		return
	}
	c.registry.Remove(msg.ID)
	c.ring.Remove(msg.ID)
	// A draining worker rejects new work but finishes what it holds, so
	// its detached jobs are reclaimed exactly like an ejection's.
	for _, job := range c.handoff.Reclaim(msg.ID) {
		job.Worker = ""
		if prev, dup := c.handoff.Admit(job); dup {
			c.finishFromMemory(job.ID, prev)
			continue
		}
		go c.runDetached(job)
	}
	fmt.Fprintf(c.stdout, "hgpartcoord: worker %s deregistered\n", msg.ID)
	w.WriteHeader(http.StatusNoContent)
}

func decodeWorkerMsg(w http.ResponseWriter, r *http.Request, msg *workerMsg) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(msg); err != nil || msg.ID == "" {
		writeError(w, http.StatusBadRequest, "want JSON body with a worker id")
		return false
	}
	return true
}

func (c *coord) handlePartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a netlist body to /partition")
		return
	}
	c.requests.Add(1)
	if c.draining.Load() {
		w.Header().Set("Retry-After", retryAfterSeconds(c.cfg.drainTimeout))
		writeError(w, http.StatusServiceUnavailable, "draining: coordinator is shutting down")
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.maxBody))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	format := r.URL.Query().Get("format")
	// The coordinator parses the netlist for two jobs: the fingerprint
	// (routing/dedup key) and the verification contract every worker
	// answer is judged against before delivery. Garbage is rejected
	// before it wastes a worker's time; the raw bytes are forwarded
	// verbatim.
	vs, err := newVerifySpec(format, raw, r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	key := fleet.JobKey{
		Fingerprint: checkpoint.HashHypergraph(vs.h),
		Opts:        canonicalOpts(r.URL.Query()),
	}

	deadline := time.Now().Add(c.cfg.reqTimeout)
	if hdr := r.Header.Get("X-Request-Deadline"); hdr != "" {
		if ms, err := strconv.ParseInt(hdr, 10, 64); err == nil {
			if d := time.UnixMilli(ms); d.Before(deadline) {
				deadline = d
			}
		}
	}
	if !deadline.After(time.Now()) {
		writeError(w, http.StatusGatewayTimeout, "propagated deadline already expired")
		return
	}

	// Accepted: job id, WAL record, handoff ledger entry (attached: this
	// handler owns the retries). From here on the job is never dropped —
	// it completes, fails permanently, or survives in the WAL.
	jobID := c.jobs.Create()
	job := fleet.Job{ID: jobID, Key: key, Format: format, Query: r.URL.RawQuery, Netlist: string(raw)}
	c.walAppend(coordWALRecord{Type: "accepted", JobID: jobID,
		Format: format, Query: r.URL.RawQuery, Netlist: string(raw),
		Fingerprint: key.Fingerprint, Opts: key.Opts})
	c.handoff.Admit(job)

	resp, worker, ferr := c.dispatch(r.Context(), job, vs, deadline)
	if ferr != nil {
		if r.Context().Err() != nil {
			// The client is gone mid-retry: leave the job detached so
			// ejection reclaim (or the next boot's WAL replay) finishes it.
			c.handoff.Detach(jobID)
			c.jobs.Update(jobID, func(j *fleet.JobInfo) { j.Status = "requeued" })
			writeError(w, http.StatusServiceUnavailable, "client canceled mid-forward; job remains queued")
			return
		}
		var perm *permanentError
		if errors.As(ferr, &perm) {
			// The worker judged the request itself bad: proxy its answer
			// and forget the job (a later identical request runs afresh).
			c.handoff.Fail(jobID)
			c.jobs.Update(jobID, func(j *fleet.JobInfo) { j.Status, j.Error = "failed", perm.body })
			c.walAppend(coordWALRecord{Type: "failed", JobID: jobID, Error: perm.body})
			writeRaw(w, perm.status, perm.body)
			return
		}
		c.failed.Add(1)
		c.handoff.Fail(jobID)
		c.jobs.Update(jobID, func(j *fleet.JobInfo) { j.Status, j.Error = "failed", ferr.Error() })
		c.walAppend(coordWALRecord{Type: "failed", JobID: jobID, Error: ferr.Error()})
		writeError(w, http.StatusBadGateway, fmt.Sprintf("all forwards failed: %v", ferr))
		return
	}

	c.handoff.Complete(jobID, fleet.Done{Cut: resp.Cut, TierName: resp.TierName, Worker: worker, Degraded: resp.Degraded})
	c.jobs.Update(jobID, func(j *fleet.JobInfo) {
		j.Status, j.Cut, j.TierName, j.Degraded, j.WallMS, j.Worker = "done", resp.Cut, resp.TierName, resp.Degraded, resp.WallMS, worker
	})
	c.walAppend(coordWALRecord{Type: "done", JobID: jobID,
		Cut: resp.Cut, TierName: resp.TierName, Worker: worker, Degraded: resp.Degraded, WallMS: resp.WallMS})
	c.keepProbeMaterial(job, vs)

	resp.JobID = jobID // the coordinator's id, not the worker's
	resp.Worker = worker
	c.ok200.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// runDetached drives one detached job (WAL-recovered or reclaimed from
// a dead worker) to completion: forward with retries, and if the whole
// fleet is unreachable, wait with capped backoff and try again. The
// loop only gives up on a permanent (4xx) outcome or coordinator drain
// — an accepted job is otherwise never dropped.
func (c *coord) runDetached(job fleet.Job) {
	job.Detached = true
	vs, err := verifySpecForJob(job)
	if err != nil {
		// The stored request no longer parses (schema drift across a
		// version boundary): permanently failed, never silently served
		// unverified.
		c.handoff.Fail(job.ID)
		c.jobs.Update(job.ID, func(j *fleet.JobInfo) { j.Status, j.Error = "failed", err.Error() })
		c.walAppend(coordWALRecord{Type: "failed", JobID: job.ID, Error: err.Error()})
		return
	}
	for round := 0; ; round++ {
		if c.draining.Load() {
			return // the WAL still holds it; the next boot resumes
		}
		deadline := time.Now().Add(c.cfg.reqTimeout)
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		resp, worker, err := c.forward(ctx, job, vs, deadline)
		cancel()
		if err == nil {
			c.handoff.Complete(job.ID, fleet.Done{Cut: resp.Cut, TierName: resp.TierName, Worker: worker, Degraded: resp.Degraded})
			c.jobs.Update(job.ID, func(j *fleet.JobInfo) {
				j.Status, j.Cut, j.TierName, j.Degraded, j.WallMS, j.Worker = "done", resp.Cut, resp.TierName, resp.Degraded, resp.WallMS, worker
			})
			c.walAppend(coordWALRecord{Type: "done", JobID: job.ID,
				Cut: resp.Cut, TierName: resp.TierName, Worker: worker, Degraded: resp.Degraded, WallMS: resp.WallMS})
			c.keepProbeMaterial(job, vs)
			return
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			c.handoff.Fail(job.ID)
			c.jobs.Update(job.ID, func(j *fleet.JobInfo) { j.Status, j.Error = "failed", perm.body })
			c.walAppend(coordWALRecord{Type: "failed", JobID: job.ID, Error: perm.body})
			return
		}
		// Transient: every candidate failed or no workers are registered
		// yet. Back off (capped) and go around.
		wait := c.cfg.backoff.Delay(round)
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		time.Sleep(wait)
	}
}

// canonicalOpts renders the result-affecting query parameters in a
// fixed order — the options half of the dedup key. The coordinator
// cannot default unset parameters the way a worker does (it does not
// know the worker's flags), so the key is the literal, sorted
// parameter set; two requests with identical parameters always share a
// key, which is all at-least-once dedup needs.
func canonicalOpts(q url.Values) string {
	keys := make([]string, 0, len(q))
	for k := range q {
		if k == "format" {
			continue // part of the netlist identity, not the options
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		vals := append([]string(nil), q[k]...)
		sort.Strings(vals)
		fmt.Fprintf(&b, "%s=%s ", k, strings.Join(vals, ","))
	}
	return strings.TrimSpace(b.String())
}

func (c *coord) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET /jobs/{id}")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusBadRequest, "want /jobs/{id}")
		return
	}
	job, ok := c.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("job %q not tracked (finished jobs are evicted after %d newer jobs)", id, fleet.MaxJobs))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleHealthz always answers 200 while the process serves; the body
// carries the fleet view: every worker's liveness state and breaker,
// the ring membership, handoff-queue counters, and degraded reasons
// (ejected workers, open breakers, WAL errors, drain).
func (c *coord) handleHealthz(w http.ResponseWriter, r *http.Request) {
	workers := c.registry.Snapshot()
	resp := map[string]any{
		"status":    "ok",
		"uptime_ms": time.Since(c.begin).Milliseconds(),
		"workers":   workers,
		"ring":      c.ring.Members(),
		"handoff":   c.handoff.Stats(),
		"jobs":      c.jobs.Counts(),
	}
	var reasons []string
	for _, wk := range workers {
		if wk.State == "ejected" {
			reasons = append(reasons, "worker ejected: "+wk.ID)
		}
		if wk.Quarantined {
			reasons = append(reasons, "worker quarantined: "+wk.ID)
		}
		if wk.Breaker == "open" {
			reasons = append(reasons, "worker breaker open: "+wk.ID)
		}
	}
	if q := c.registry.QuarantinedIDs(); len(q) > 0 {
		resp["quarantined"] = q
	}
	if c.wal != nil {
		resp["wal"] = true
		resp["last_checkpoint_age_ms"] = c.wal.lastAppendAge().Milliseconds()
		resp["wal_errors"] = c.walErrs.Load()
		if n := c.walErrs.Load(); n > 0 {
			last, _ := c.walLastErr.Load().(string)
			resp["wal_last_error"] = last
			reasons = append(reasons, fmt.Sprintf("%d WAL append error(s), last: %s", n, last))
		}
		if p := c.lastScrub.Load(); p != nil {
			st := *p
			st.AgeMS = time.Since(st.At).Milliseconds()
			resp["wal_scrub"] = st
			if !st.Healthy() {
				reasons = append(reasons, "wal scrub: "+st.Problem())
			}
		}
	} else {
		resp["wal"] = false
	}
	if c.draining.Load() {
		resp["draining"] = true
		reasons = append(reasons, "draining: shutting down")
	}
	if len(reasons) > 0 {
		sort.Strings(reasons)
		resp["status"] = "degraded"
		resp["degraded_reasons"] = reasons
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *coord) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"requests":    c.requests.Load(),
		"ok":          c.ok200.Load(),
		"failed":      c.failed.Load(),
		"rerouted":    c.rerouted.Load(),
		"forwards":    c.fwdCounter.Load(),
		"verified":    c.verified.Load(),
		"invalid":     c.invalid.Load(),
		"quarantines": c.quarantines.Load(),
		"quarantined": c.registry.QuarantinedIDs(),
		"probes":      c.probes.Load(),
		"readmitted":  c.readmitted.Load(),
		"hedges":      c.hedges.Load(),
		"hedge_wins":  c.hedgeWins.Load(),
		"collapsed":   c.collapsed.Load(),
		"handoff":     c.handoff.Stats(),
		"jobs":        c.jobs.Counts(),
		"workers":     c.registry.Len(),
		"wal_errors":  c.walErrs.Load(),
		"uptime_ms":   time.Since(c.begin).Milliseconds(),
	}
	if p := c.lastScrub.Load(); p != nil {
		st := *p
		st.AgeMS = time.Since(st.At).Milliseconds()
		stats["wal_scrub"] = st
	}
	writeJSON(w, http.StatusOK, stats)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "status": code})
}

// writeRaw proxies a worker's error body verbatim.
func writeRaw(w http.ResponseWriter, code int, body string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	io.WriteString(w, body)
}

func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
