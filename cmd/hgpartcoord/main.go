// Command hgpartcoord fronts a fleet of hgpartd workers: it routes
// partition requests over a consistent-hash ring keyed by netlist
// fingerprint (the same fingerprint the workers key their result
// caches by, so repeat requests enjoy cache affinity), tracks worker
// liveness by heartbeat with breaker-style ejection, retries failed
// forwards with jittered backoff on the next ring candidate, and —
// with -wal — journals every accepted job so that neither a worker
// SIGKILL nor a coordinator crash drops accepted work.
//
// Endpoints:
//
//	POST /partition   netlist body -> JSON cut, forwarded to a worker
//	                  (same query surface as hgpartd; the response
//	                  carries the coordinator's job_id plus the worker)
//	POST /register    worker announce: {"id","addr"} ->
//	                  {"heartbeat_interval_ms"}
//	POST /heartbeat   {"id"} -> 204, or 404 when unknown (re-register)
//	POST /deregister  {"id"} -> 204; graceful worker drain
//	GET  /jobs/{id}   one job's state, surviving coordinator restarts
//	GET  /healthz     fleet view: worker liveness states, breakers,
//	                  ring membership, handoff counters
//	GET  /stats       atomic request counters
//
// Liveness is a three-state machine per worker driven by heartbeat
// silence: active -> suspect after -heartbeat-ttl, suspect -> ejected
// after -heartbeat-ttl x -eject-after. An ejected worker leaves the
// ring and its accepted-but-unfinished detached jobs are re-enqueued
// onto survivors (at-least-once, deduplicated by netlist fingerprint +
// options); its next heartbeat or registration rejoins it with no
// manual intervention. Per-worker circuit breakers (reusing the
// portfolio's breaker machinery) independently skip workers that keep
// failing requests until a cooldown probe succeeds.
//
// Example:
//
//	hgpartcoord -addr :7070 -wal /var/lib/hgpartcoord/wal &
//	hgpartd -addr :8081 -coordinator http://localhost:7070 -worker-id w1 &
//	hgpartd -addr :8082 -coordinator http://localhost:7070 -worker-id w2 &
//	curl -s -X POST --data-binary @netlist.nets localhost:7070/partition
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fasthgp/internal/faultinject"
	"fasthgp/internal/fleet"
	"fasthgp/internal/resilience"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main; it blocks until SIGTERM/SIGINT or
// a listener failure, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hgpartcoord", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":7070", "listen address (use :0 for an ephemeral port; the actual address is printed)")
		maxBody      = fs.Int64("max-body", 8<<20, "max request body bytes; beyond it 413")
		reqTimeout   = fs.Duration("req-timeout", 30*time.Second, "per-request wall budget, propagated to workers via X-Request-Deadline")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "grace for in-flight requests on SIGTERM")
		heartbeatTTL = fs.Duration("heartbeat-ttl", 3*time.Second, "heartbeat silence moving a worker active -> suspect")
		ejectAfter   = fs.Int("eject-after", 3, "TTLs of silence before a worker is ejected from the ring")
		replicas     = fs.Int("replicas", fleet.DefaultReplicas, "ring virtual nodes per worker")
		retries      = fs.Int("retries", 8, "max forward attempts per request across ring candidates")
		retryBase    = fs.Duration("retry-base", 25*time.Millisecond, "first retry's nominal backoff")
		retryCap     = fs.Duration("retry-cap", time.Second, "backoff growth cap")
		retrySeed    = fs.Int64("retry-seed", 1, "deterministic backoff-jitter seed")
		brkThresh    = fs.Int("breaker-threshold", 3, "consecutive failures tripping a worker's circuit breaker")
		brkCooldown  = fs.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a probe")
		walPath      = fs.String("wal", "", "write-ahead log path: accepted jobs are journaled and re-enqueued after a crash (empty = off)")
		hedgeDelay   = fs.Duration("hedge-delay", 0, "fire a duplicate to the failover worker when a request is still unanswered after this long; first verified answer wins (0 = off)")
		qThreshold   = fs.Int("quarantine-threshold", 3, "oracle-invalid answers within the window that quarantine a worker")
		qWindow      = fs.Duration("quarantine-window", 30*time.Second, "sliding window for counting invalid answers")
		qReadmit     = fs.Int("quarantine-readmit", 3, "consecutive verified probe answers that readmit a quarantined worker")
		qProbeEvery  = fs.Duration("quarantine-probe-interval", time.Second, "minimum spacing between readmission probes to one worker")
		scrubEvery   = fs.Duration("scrub-interval", time.Minute, "WAL integrity-scrub cadence (0 = off)")
		faults       = fs.String("faultinject", "", "fault-injection spec, e.g. 'drop@fleet.forward:0' (also read from FASTHGP_FAULTS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "hgpartcoord:", err)
		return 1
	}
	spec := *faults
	if spec == "" {
		spec = os.Getenv("FASTHGP_FAULTS")
	}
	if spec != "" {
		plan, err := faultinject.ParseSpec(spec)
		if err != nil {
			return fail(err)
		}
		defer faultinject.Install(plan)()
		fmt.Fprintf(stdout, "hgpartcoord: fault injection armed: %s\n", spec)
	}

	cfg := coordConfig{
		maxBody:       *maxBody,
		reqTimeout:    *reqTimeout,
		retries:       *retries,
		backoff:       fleet.BackoffConfig{Base: *retryBase, Cap: *retryCap, Seed: *retrySeed},
		heartbeatTTL:  *heartbeatTTL,
		ejectAfter:    *ejectAfter,
		replicas:      *replicas,
		drainTimeout:  *drainTimeout,
		hedgeDelay:    *hedgeDelay,
		scrubInterval: *scrubEvery,
	}
	c := newCoord(cfg, fleet.RegistryConfig{
		HeartbeatTTL: *heartbeatTTL,
		EjectAfter:   *ejectAfter,
		Breakers:     resilience.BreakerConfig{Threshold: *brkThresh, Cooldown: *brkCooldown},
		Quarantine: fleet.QuarantineConfig{
			Threshold:     *qThreshold,
			Window:        *qWindow,
			ReadmitAfter:  *qReadmit,
			ProbeInterval: *qProbeEvery,
		},
	}, stdout)

	// Boot recovery: replay the WAL and re-enqueue whatever the previous
	// process accepted but never saw finish. The detached runners wait
	// (with backoff) for workers to register, so boot order is free.
	if *walPath != "" {
		w, maxSeq, replayed, pending, err := openCoordWAL(*walPath)
		if err != nil {
			return fail(err)
		}
		defer w.close()
		c.attachWAL(w, maxSeq, replayed)
		if len(replayed) > 0 || len(pending) > 0 {
			fmt.Fprintf(stdout, "hgpartcoord: WAL %s: replayed %d record(s), re-enqueuing %d interrupted job(s)\n",
				*walPath, len(replayed), len(pending))
		}
		c.requeue(pending)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "hgpartcoord: listening on %s\n", ln.Addr())

	// The ejection sweep: interval bounds detection latency only, never
	// correctness, so half a TTL keeps /healthz timely without load.
	sweepStop := make(chan struct{})
	go c.sweepLoop(*heartbeatTTL/2, sweepStop)
	if c.wal != nil && *scrubEvery > 0 {
		go c.scrubLoop(*scrubEvery, sweepStop)
	}

	httpSrv := &http.Server{
		Handler:           c.handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		close(sweepStop)
		return fail(err)
	case <-ctx.Done():
	}
	stop()
	close(sweepStop)
	c.draining.Store(true)
	fmt.Fprintf(stdout, "hgpartcoord: signal received, draining for up to %s\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fail(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(stdout, "hgpartcoord: drained, bye")
	return 0
}
