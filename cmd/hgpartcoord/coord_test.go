package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"fasthgp"
	"fasthgp/internal/faultinject"
	"fasthgp/internal/fleet"
	"fasthgp/internal/resilience"
)

const testNets = `module a
module b
module c
module d
module e
module f
net n1 a b c
net n2 c d
net n3 d e f
net n4 b e
`

// testCoord builds a coordinator with fast retry timing and an
// injectable registry clock.
func testCoord(now func() time.Time) *coord {
	cfg := coordConfig{
		maxBody:      1 << 20,
		reqTimeout:   5 * time.Second,
		retries:      6,
		backoff:      fleet.BackoffConfig{Base: time.Millisecond, Cap: 5 * time.Millisecond, Seed: 1},
		heartbeatTTL: time.Second,
		ejectAfter:   2,
		replicas:     16,
		drainTimeout: time.Second,
	}
	return newCoord(cfg, fleet.RegistryConfig{
		HeartbeatTTL: time.Second,
		EjectAfter:   2,
		Breakers:     resilience.BreakerConfig{Threshold: 2, Cooldown: time.Minute},
		Now:          now,
	}, io.Discard)
}

// fakeWorker is an httptest stand-in for hgpartd: it answers
// /partition honestly by construction — it parses the posted netlist
// and returns the half-split assignment with its true recomputed cut,
// so its answers pass the coordinator's oracle for any request. The
// lie knob turns it Byzantine (claimed cut off by one); the delay knob
// makes it slow (for hedging tests).
type fakeWorker struct {
	id       string
	srv      *httptest.Server
	mu       sync.Mutex
	requests int
	lastHdr  string // last X-Request-Deadline seen
	lie      bool
	delay    time.Duration
}

func newFakeWorker(t *testing.T, id string) *fakeWorker {
	t.Helper()
	f := &fakeWorker{id: id}
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.requests++
		f.lastHdr = r.Header.Get("X-Request-Deadline")
		lie, delay := f.lie, f.delay
		f.mu.Unlock()
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
		}
		h, _, err := fasthgp.ReadNetlistFixed(bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		n := h.NumVertices()
		p := fasthgp.NewBipartition(n)
		assign := make([]int, n)
		for v := 0; v < n; v++ {
			if v < n/2 {
				p.Assign(v, fasthgp.Left)
			} else {
				p.Assign(v, fasthgp.Right)
				assign[v] = 1
			}
		}
		cut := fasthgp.CutSize(h, p)
		if lie {
			cut ^= 1 // always off by one: the oracle must catch it
		}
		json.NewEncoder(w).Encode(workerResponse{
			JobID: "wj-" + f.id, Modules: n, Nets: h.NumEdges(), Cut: cut,
			TierName: "fm", Assignment: assign, WallMS: 1,
		})
	}))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeWorker) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeWorker) seen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

func (f *fakeWorker) setLie(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lie = v
}

func (f *fakeWorker) setDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// register announces a worker through the coordinator's real endpoint.
func register(t *testing.T, h http.Handler, id, addr string) {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"addr":%q}`, id, addr)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/register", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("register %s = %d: %s", id, rec.Code, rec.Body)
	}
}

func beat(h http.Handler, id string) int {
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/heartbeat", strings.NewReader(fmt.Sprintf(`{"id":%q}`, id))))
	return rec.Code
}

func postNetlist(t *testing.T, h http.Handler, query, body string) (*httptest.ResponseRecorder, workerResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/partition"+query, strings.NewReader(body)))
	var resp workerResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad 200 body: %v: %s", err, rec.Body)
		}
	}
	return rec, resp
}

// TestRouteAffinity: identical netlists route to the same worker every
// time (the cache-affinity property), and the response carries the
// coordinator's job id plus the worker that ran it.
func TestRouteAffinity(t *testing.T) {
	c := testCoord(nil)
	h := c.handler()
	w1, w2 := newFakeWorker(t, "w1"), newFakeWorker(t, "w2")
	register(t, h, "w1", w1.addr())
	register(t, h, "w2", w2.addr())

	var winner string
	for i := 0; i < 5; i++ {
		rec, resp := postNetlist(t, h, "", testNets)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, rec.Code, rec.Body)
		}
		if resp.Worker != "w1" && resp.Worker != "w2" {
			t.Fatalf("worker = %q", resp.Worker)
		}
		if winner == "" {
			winner = resp.Worker
		} else if resp.Worker != winner {
			t.Fatalf("request %d routed to %s, earlier ones to %s", i, resp.Worker, winner)
		}
		if resp.JobID == "wj1" || resp.JobID == "" {
			t.Fatalf("job_id = %q, want a coordinator id", resp.JobID)
		}
	}
	if w1.seen()+w2.seen() != 5 {
		t.Errorf("workers saw %d+%d requests, want 5 total", w1.seen(), w2.seen())
	}
	if w1.seen() != 0 && w2.seen() != 0 {
		t.Errorf("affinity broken: both workers served (%d / %d)", w1.seen(), w2.seen())
	}
}

// TestFailoverToSurvivor: with one worker's address dead (connection
// refused), every request still answers 200 via the survivor.
func TestFailoverToSurvivor(t *testing.T) {
	c := testCoord(nil)
	h := c.handler()
	live := newFakeWorker(t, "live")
	// A dead address: bind a listener, grab its port, close it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := strings.TrimPrefix(dead.URL, "http://")
	dead.Close()
	register(t, h, "live", live.addr())
	register(t, h, "dead", deadAddr)

	// Several structurally distinct netlists so both ring primaries occur.
	for i := 0; i < 8; i++ {
		rec, resp := postNetlist(t, h, "", distinctNets(i))
		if rec.Code != http.StatusOK {
			t.Fatalf("netlist %d = %d: %s", i, rec.Code, rec.Body)
		}
		if resp.Worker != "live" {
			t.Fatalf("netlist %d answered by %q", i, resp.Worker)
		}
	}
	// The dead worker's breaker tripped (threshold 2) along the way.
	snap := c.registry.Snapshot()
	for _, w := range snap {
		if w.ID == "dead" && w.Breaker != "open" {
			t.Errorf("dead worker breaker = %s, want open", w.Breaker)
		}
	}
}

// TestHeartbeatEjectionAndRejoin drives the liveness state machine
// end to end with an injected clock: silence ejects a worker from the
// ring and reclaims its detached jobs onto the survivor; a later
// heartbeat rejoins it without re-registration.
func TestHeartbeatEjectionAndRejoin(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := testCoord(clock)
	h := c.handler()
	w2 := newFakeWorker(t, "w2")
	register(t, h, "w1", "127.0.0.1:1") // never answers; only liveness matters here
	register(t, h, "w2", w2.addr())

	// A detached job assigned to w1 — as if recovered from the WAL.
	q, _ := url.ParseQuery("")
	job := fleet.Job{
		ID:       "j99",
		Key:      fleet.JobKey{Fingerprint: 42, Opts: canonicalOpts(q)},
		Netlist:  testNets,
		Worker:   "w1",
		Detached: true,
	}
	c.jobs.Restore(fleet.JobInfo{ID: "j99", Status: "requeued", Requeued: true})
	c.handoff.Admit(job)

	// w2 keeps beating; w1 goes silent past TTL*EjectAfter = 2s.
	advance(1500 * time.Millisecond)
	if code := beat(h, "w2"); code != http.StatusNoContent {
		t.Fatalf("w2 beat = %d", code)
	}
	advance(1500 * time.Millisecond)
	c.sweep()

	if st, _ := c.registry.State("w1"); st != fleet.WorkerEjected {
		t.Fatalf("w1 state = %v, want ejected", st)
	}
	if c.ring.Has("w1") {
		t.Error("ejected worker still on the ring")
	}
	if !c.ring.Has("w2") {
		t.Error("survivor fell off the ring")
	}

	// The reclaimed job must complete on the survivor.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, ok := c.jobs.Get("j99"); ok && j.Status == "done" {
			if j.Worker != "w2" {
				t.Fatalf("reclaimed job ran on %q, want w2", j.Worker)
			}
			break
		}
		if time.Now().After(deadline) {
			j, _ := c.jobs.Get("j99")
			t.Fatalf("reclaimed job never completed: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A heartbeat from the ejected worker rejoins it, no re-register.
	if code := beat(h, "w1"); code != http.StatusNoContent {
		t.Fatalf("rejoin beat = %d", code)
	}
	if st, _ := c.registry.State("w1"); st != fleet.WorkerActive {
		t.Errorf("w1 state after rejoin = %v, want active", st)
	}
	if !c.ring.Has("w1") {
		t.Error("rejoined worker not back on the ring")
	}
	// An unknown worker's beat answers 404: the re-register signal.
	if code := beat(h, "ghost"); code != http.StatusNotFound {
		t.Errorf("unknown worker beat = %d, want 404", code)
	}
}

// TestDeadlinePropagation: the forwarded request carries an
// X-Request-Deadline within the coordinator's request budget.
func TestDeadlinePropagation(t *testing.T) {
	c := testCoord(nil)
	h := c.handler()
	w := newFakeWorker(t, "w1")
	register(t, h, "w1", w.addr())
	before := time.Now()
	rec, _ := postNetlist(t, h, "", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	w.mu.Lock()
	hdr := w.lastHdr
	w.mu.Unlock()
	if hdr == "" {
		t.Fatal("no X-Request-Deadline forwarded")
	}
	ms, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil {
		t.Fatalf("bad deadline header %q", hdr)
	}
	d := time.UnixMilli(ms)
	if d.Before(before) || d.After(before.Add(c.cfg.reqTimeout+time.Second)) {
		t.Errorf("deadline %v outside [now, now+reqTimeout]", d)
	}
}

// TestInjectedDropRetries: a drop rule on the first forward makes the
// attempt fail without sending; the retry succeeds and the client
// never sees the fault.
func TestInjectedDropRetries(t *testing.T) {
	defer faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointFleetForward, Index: 0, Kind: faultinject.KindDrop},
	}})()
	c := testCoord(nil)
	h := c.handler()
	w := newFakeWorker(t, "w1")
	register(t, h, "w1", w.addr())
	rec, resp := postNetlist(t, h, "", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if resp.Worker != "w1" || resp.Cut != 2 {
		t.Errorf("resp = %+v", resp)
	}
	if got := c.fwdCounter.Load(); got < 2 {
		t.Errorf("forward attempts = %d, want >= 2 (drop + retry)", got)
	}
}

// TestInjectedPartialResponseRetries: a partial rule truncates the
// worker's reply mid-read; the coordinator treats it as transport
// failure and retries to success.
func TestInjectedPartialResponseRetries(t *testing.T) {
	defer faultinject.Install(&faultinject.Plan{Rules: []faultinject.Rule{
		{Point: faultinject.PointFleetForward, Index: 0, Kind: faultinject.KindPartial},
	}})()
	c := testCoord(nil)
	h := c.handler()
	w := newFakeWorker(t, "w1")
	register(t, h, "w1", w.addr())
	rec, resp := postNetlist(t, h, "", testNets)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if resp.Cut != 2 {
		t.Errorf("cut = %d after partial-response retry", resp.Cut)
	}
}

// TestBadNetlistIsPermanent: garbage never reaches a worker (the
// coordinator fingerprints first) and is a 400, not a retry storm.
func TestBadNetlistIsPermanent(t *testing.T) {
	c := testCoord(nil)
	h := c.handler()
	w := newFakeWorker(t, "w1")
	register(t, h, "w1", w.addr())
	rec, _ := postNetlist(t, h, "", "module a\nfrobnicate a b\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body)
	}
	if w.seen() != 0 {
		t.Errorf("bad netlist reached a worker %d time(s)", w.seen())
	}
}

// TestWALRecoveryReenqueues: a coordinator killed after accepting a
// job replays it at boot as a detached handoff and completes it once a
// worker registers — zero dropped accepted jobs across a restart.
func TestWALRecoveryReenqueues(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "coord.wal")

	// First life: accept a job, journal it, "crash" before any outcome.
	w1, _, _, _, err := openCoordWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := w1.append(coordWALRecord{Type: "accepted", JobID: "j7",
		Netlist: testNets, Fingerprint: 7, Opts: "starts=2"}); err != nil {
		t.Fatal(err)
	}
	w1.close()

	// Second life: replay, then register a worker; the detached runner
	// must finish the job on its own.
	w2, maxSeq, replayed, pending, err := openCoordWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if maxSeq != 7 || len(pending) != 1 || len(replayed) != 1 {
		t.Fatalf("replay = (seq %d, %d replayed, %d pending)", maxSeq, len(replayed), len(pending))
	}
	c := testCoord(nil)
	c.attachWAL(w2, maxSeq, replayed)
	c.requeue(pending)
	h := c.handler()
	fw := newFakeWorker(t, "w1")
	register(t, h, "w1", fw.addr())

	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, ok := c.jobs.Get("j7"); ok && j.Status == "done" {
			if !j.Requeued {
				t.Error("recovered job not marked requeued")
			}
			break
		}
		if time.Now().After(deadline) {
			j, _ := c.jobs.Get("j7")
			t.Fatalf("recovered job never completed: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// New ids continue after the dead process's.
	if id := c.jobs.Create(); fleet.JobSeq(id) <= 7 {
		t.Errorf("new job id %s does not continue past replayed j7", id)
	}
}

// TestDetachedDuplicateDeduped: a detached re-enqueue whose key
// already completed is answered from completion memory — the
// at-least-once duplicate runs zero times.
func TestDetachedDuplicateDeduped(t *testing.T) {
	c := testCoord(nil)
	key := fleet.JobKey{Fingerprint: 42, Opts: "starts=2"}
	c.handoff.Admit(fleet.Job{ID: "j1", Key: key})
	c.handoff.Complete("j1", fleet.Done{Cut: 9, TierName: "fm", Worker: "w1"})

	// No workers registered: completing requires memory, not a forward.
	c.jobs.Restore(fleet.JobInfo{ID: "j2", Status: "requeued", Requeued: true})
	c.requeue([]fleet.Job{{ID: "j2", Key: key, Netlist: testNets, Detached: true}})

	j, ok := c.jobs.Get("j2")
	if !ok || j.Status != "done" || j.Cut != 9 || j.Worker != "w1" {
		t.Fatalf("duplicate not served from memory: %+v", j)
	}
	if stats := c.handoff.Stats(); stats["deduped"] != 1 {
		t.Errorf("deduped = %d, want 1", stats["deduped"])
	}
}

// TestCoordinatorDrain: during drain, new partition requests bounce
// with 503 + Retry-After.
func TestCoordinatorDrain(t *testing.T) {
	c := testCoord(nil)
	h := c.handler()
	w := newFakeWorker(t, "w1")
	register(t, h, "w1", w.addr())
	c.draining.Store(true)
	rec, _ := postNetlist(t, h, "", testNets)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status during drain = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("no Retry-After during drain")
	}
	if w.seen() != 0 {
		t.Error("draining coordinator forwarded a request")
	}
}

// TestDeregisterReclaims: a graceful deregister reroutes the worker's
// detached jobs immediately.
func TestDeregisterReclaims(t *testing.T) {
	c := testCoord(nil)
	h := c.handler()
	w1, w2 := newFakeWorker(t, "w1"), newFakeWorker(t, "w2")
	register(t, h, "w1", w1.addr())
	register(t, h, "w2", w2.addr())

	c.jobs.Restore(fleet.JobInfo{ID: "j5", Status: "requeued", Requeued: true})
	c.handoff.Admit(fleet.Job{ID: "j5", Key: fleet.JobKey{Fingerprint: 5}, Netlist: testNets, Worker: "w1", Detached: true})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/deregister", strings.NewReader(`{"id":"w1"}`)))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("deregister = %d", rec.Code)
	}
	if c.ring.Has("w1") || c.registry.Len() != 1 {
		t.Error("deregistered worker still routable")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, ok := c.jobs.Get("j5"); ok && j.Status == "done" {
			if j.Worker != "w2" {
				t.Fatalf("reclaimed job ran on %q, want w2", j.Worker)
			}
			return
		}
		if time.Now().After(deadline) {
			j, _ := c.jobs.Get("j5")
			t.Fatalf("job not rerouted after deregister: %+v", j)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
