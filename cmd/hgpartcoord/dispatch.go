package main

// Dispatch policy above the forward loop: single-flight collapse and
// hedged requests.
//
// Single-flight: concurrent live requests with the same routing key
// (netlist fingerprint + canonical options) are one computation — the
// first becomes the leader and forwards; followers wait on its flight
// and share the verified answer, each under its own job id and WAL
// records. If the leader fails while a follower's own context is still
// alive, that follower takes over and forwards itself, so a canceled
// leader never strands the queue.
//
// Hedging: when the deadline budget allows, a live request that has
// not finished after hedge-delay fires a duplicate starting at the
// failover candidate (offset 1 on the ring walk), and the first
// *verified* answer wins — the loser is canceled. Verification makes
// hedging safe against Byzantine workers (a fast lie cannot win; it
// strikes the liar and the slower honest answer is awaited) and turns
// the verification cost into tail-latency insurance. Workers dedup by
// fingerprint against their result caches, so the wasted duplicate
// work is one cache probe in the common case.

import (
	"context"
	"time"

	"fasthgp/internal/fleet"
)

// flight is one in-progress computation shared by all concurrent
// requests with its key.
type flight struct {
	done   chan struct{} // closed when resp/worker/err are final
	resp   workerResponse
	worker string
	err    error
}

// dispatch routes one live (attached) request through single-flight
// collapse and hedging. Detached re-runs use the plain forward loop:
// they have no client waiting, so tail latency is irrelevant.
func (c *coord) dispatch(ctx context.Context, job fleet.Job, vs *verifySpec, deadline time.Time) (workerResponse, string, error) {
	for {
		c.flightMu.Lock()
		if f, ok := c.flights[job.Key]; ok {
			c.flightMu.Unlock()
			c.collapsed.Add(1)
			select {
			case <-f.done:
				if f.err == nil {
					return f.resp, f.worker, nil
				}
				// Leader failed (possibly just canceled by its own
				// client). Loop: become the leader or join a newer
				// flight, while our context allows.
				if ctx.Err() != nil {
					return workerResponse{}, "", ctx.Err()
				}
				continue
			case <-ctx.Done():
				return workerResponse{}, "", ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[job.Key] = f
		c.flightMu.Unlock()

		resp, worker, err := c.forwardHedged(ctx, job, vs, deadline)

		f.resp, f.worker, f.err = resp, worker, err
		c.flightMu.Lock()
		delete(c.flights, job.Key)
		c.flightMu.Unlock()
		close(f.done)
		return resp, worker, err
	}
}

// forwardHedged runs the forward loop, firing one delayed duplicate at
// the failover candidate when the budget allows. First verified answer
// wins; the loser is canceled.
func (c *coord) forwardHedged(ctx context.Context, job fleet.Job, vs *verifySpec, deadline time.Time) (workerResponse, string, error) {
	// No hedging configured, not enough budget for a meaningful
	// duplicate, or nobody to hedge to: plain forward.
	if c.cfg.hedgeDelay <= 0 || time.Until(deadline) < 2*c.cfg.hedgeDelay || c.ring.Len() < 2 {
		return c.forward(ctx, job, vs, deadline)
	}

	type outcome struct {
		resp   workerResponse
		worker string
		err    error
		hedge  bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan outcome, 2)
	inFlight := 1
	go func() {
		r, w, e := c.forwardFrom(hctx, job, vs, deadline, 0)
		results <- outcome{r, w, e, false}
	}()
	timer := time.NewTimer(c.cfg.hedgeDelay)
	defer timer.Stop()

	var firstErr error
	for {
		select {
		case <-timer.C:
			c.hedges.Add(1)
			inFlight++
			go func() {
				r, w, e := c.forwardFrom(hctx, job, vs, deadline, 1)
				results <- outcome{r, w, e, true}
			}()
			timer.Stop()
		case o := <-results:
			if o.err == nil {
				if o.hedge {
					c.hedgeWins.Add(1)
				}
				cancel() // the loser stops retrying immediately
				return o.resp, o.worker, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			inFlight--
			if inFlight == 0 {
				// Both runners failed (or the only runner failed before
				// the hedge timer — stop waiting for a timer that would
				// hedge a finished race).
				return workerResponse{}, "", firstErr
			}
		}
	}
}
