// Command hgstat prints the structural statistics of a netlist that
// the paper's analysis cares about: size/degree distributions,
// connectivity, and the intersection-graph profile (vertices, edges,
// diameter estimate, boundary-set fraction) before and after large-net
// filtering.
//
// Usage:
//
//	hgstat -in chip.nets [-format nets|hgr] [-threshold 10]
//	hgstat -in chip.nets -levels
//
// With -levels it additionally prints the multilevel coarsening
// hierarchy — per-level module/net/pin counts and shrink factors —
// for tuning coarsest-size thresholds.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fasthgp"
	"fasthgp/internal/coarsen"
	"fasthgp/internal/core"
	"fasthgp/internal/intersect"
	"fasthgp/internal/stats"
)

func main() {
	var (
		in        = flag.String("in", "", "input netlist; required")
		format    = flag.String("format", "nets", "input format: nets or hgr")
		threshold = flag.Int("threshold", 10, "large-net threshold for the filtered G profile")
		seed      = flag.Int64("seed", 1, "seed for the BFS probes")
		levels    = flag.Bool("levels", false, "print the multilevel coarsening hierarchy (per-level module/net/pin counts)")
		coarsest  = flag.Int("coarsest", 64, "with -levels: stop coarsening at this many modules")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "hgstat: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	var h *fasthgp.Hypergraph
	switch *format {
	case "nets":
		h, err = fasthgp.ReadNetlist(f)
	case "hgr":
		h, err = fasthgp.ReadHMetis(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("modules: %d   nets: %d   pins: %d\n", h.NumVertices(), h.NumEdges(), h.NumPins())
	_, comps := h.Components()
	fmt.Printf("connected components: %d\n", comps)
	fmt.Printf("total module weight: %d\n\n", h.TotalVertexWeight())

	sizes := make([]float64, h.NumEdges())
	big := map[int]int{8: 0, 14: 0, 20: 0}
	for e := 0; e < h.NumEdges(); e++ {
		sizes[e] = float64(h.EdgeSize(e))
		for k := range big {
			if h.EdgeSize(e) >= k {
				big[k]++
			}
		}
	}
	s := stats.Summarize(sizes)
	fmt.Printf("net size: mean %.2f  median %.0f  max %.0f  (k>=8: %d, k>=14: %d, k>=20: %d)\n",
		s.Mean, s.Median, s.Max, big[8], big[14], big[20])

	degs := make([]float64, h.NumVertices())
	for v := 0; v < h.NumVertices(); v++ {
		degs[v] = float64(h.VertexDegree(v))
	}
	d := stats.Summarize(degs)
	fmt.Printf("module degree: mean %.2f  median %.0f  max %.0f\n\n", d.Mean, d.Median, d.Max)

	rng := rand.New(rand.NewSource(*seed))
	if *levels {
		hierarchy := coarsen.BuildHierarchy(h, rng, coarsen.Options{MinVertices: *coarsest})
		fmt.Printf("coarsening hierarchy (%d levels, heavy-edge matching):\n", len(hierarchy))
		fmt.Printf("  level %2d: %7d modules %7d nets %8d pins\n", 0, h.NumVertices(), h.NumEdges(), h.NumPins())
		prev := h.NumVertices()
		for i, l := range hierarchy {
			st := l.Stats()
			fmt.Printf("  level %2d: %7d modules %7d nets %8d pins  (shrink %.2f)\n",
				i+1, st.Vertices, st.Nets, st.Pins, float64(st.Vertices)/float64(prev))
			prev = st.Vertices
		}
		fmt.Println()
	}
	for _, thr := range []int{0, *threshold} {
		label := "unfiltered"
		if thr > 0 {
			label = fmt.Sprintf("threshold k>=%d", thr)
		}
		ig := intersect.Build(h, intersect.Options{Threshold: thr})
		fmt.Printf("intersection graph (%s): %d vertices, %d edges, %d excluded nets\n",
			label, ig.G.NumVertices(), ig.G.NumEdges(), len(ig.Excluded))
		if ig.G.NumVertices() == 0 {
			continue
		}
		if !ig.G.IsConnected() {
			_, k := ig.G.Components()
			fmt.Printf("  G disconnected (%d components): a zero-cut partition of the included nets exists\n", k)
			continue
		}
		u, v, depth := ig.G.LongestBFSPath(rng)
		pb := core.PartialFromCut(h, ig, u, v)
		fmt.Printf("  longest BFS path depth: %d   boundary set: %d nets (%.1f%% of G)\n",
			depth, len(pb.Boundary.Nets),
			100*float64(len(pb.Boundary.Nets))/float64(ig.G.NumVertices()))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgstat:", err)
	os.Exit(1)
}
