// Command hggen generates synthetic netlists in the library's text
// format and writes them to stdout or a file.
//
// Usage:
//
//	hggen -family profile -tech stdcell -modules 500 -signals 900 > chip.nets
//	hggen -family planted -modules 500 -signals 700 -cut 8
//	hggen -family random  -modules 200 -signals 400
//	hggen -family random  -dist powerlaw -modules 20000 -signals 30000
//	hggen -family table2 -name IC1
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fasthgp"
	"fasthgp/internal/gen"
	"fasthgp/internal/netio"
)

func main() {
	var (
		family  = flag.String("family", "profile", "generator: profile, random, planted, disconnected, table2")
		tech    = flag.String("tech", "stdcell", "profile technology: pcb, stdcell, ga, hybrid")
		modules = flag.Int("modules", 200, "number of modules")
		signals = flag.Int("signals", 400, "number of signals")
		cut     = flag.Int("cut", 4, "planted: crossing nets c")
		comps   = flag.Int("components", 3, "disconnected: component count")
		name    = flag.String("name", "Bd1", "table2: instance name (Bd1..Bd3, IC1, IC2, Diff1..Diff3)")
		dist    = flag.String("dist", "uniform", "random: pin distribution: uniform, powerlaw (Zipf hubs + geometric net sizes — the huge-instance shape)")
		alpha   = flag.Float64("alpha", 0, "powerlaw: Zipf exponent > 1 (0 = default 1.5); lower = heavier hubs")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (default stdout)")
		format  = flag.String("format", "nets", "output format: nets (netio) or hgr (hMETIS)")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var h *fasthgp.Hypergraph
	var err error
	switch *family {
	case "profile":
		var t gen.Technology
		switch *tech {
		case "pcb":
			t = gen.PCB
		case "stdcell":
			t = gen.StdCell
		case "ga":
			t = gen.GateArray
		case "hybrid":
			t = gen.Hybrid
		default:
			fatal(fmt.Errorf("unknown technology %q", *tech))
		}
		h, err = gen.Profile(gen.ProfileConfig{Modules: *modules, Signals: *signals, Technology: t}, rng)
	case "random":
		switch *dist {
		case "uniform":
			h, err = gen.Random(*modules, gen.RandomConfig{NumEdges: *signals, MaxDegree: 6}, rng)
		case "powerlaw":
			h, err = gen.PowerLaw(*modules, gen.PowerLawConfig{NumEdges: *signals, Alpha: *alpha}, rng)
		default:
			fatal(fmt.Errorf("unknown distribution %q", *dist))
		}
	case "planted":
		h, _, err = gen.PlantedCut(*modules, gen.PlantedConfig{CutSize: *cut, IntraEdges: *signals - *cut, MaxDegree: 6}, rng)
	case "disconnected":
		h, err = gen.Disconnected(*modules, *comps, *signals / *comps, rng)
	case "table2":
		h, err = gen.Table2Instance(gen.Table2Name(*name), *seed)
	default:
		fatal(fmt.Errorf("unknown family %q", *family))
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "nets":
		err = netio.Write(w, h)
	case "hgr":
		err = netio.WriteHMetis(w, h)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hggen: wrote %d modules, %d nets, %d pins\n",
		h.NumVertices(), h.NumEdges(), h.NumPins())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hggen:", err)
	os.Exit(1)
}
