// Command tables regenerates the paper's evaluation artifacts: Table 1,
// Table 2, and the supporting experiments X1–X9 indexed in DESIGN.md.
//
// Usage:
//
//	tables -table 1            # Table 1 (large-net crossing %)
//	tables -table 2            # Table 2 (cutsize + CPU ratios)
//	tables -exp difficult      # X1 planted-cut optimality
//	tables -exp largenets      # X2 threshold ablation
//	tables -exp diameter       # X3 BFS depth / diameter / boundary
//	tables -exp balance        # X5 engineer's rule
//	tables -exp starts         # X6 multi-start ablation
//	tables -exp granular       # X7 granularization
//	tables -exp scaling        # X8 runtime scaling
//	tables -exp quotient       # X9 quotient-cut objective
//	tables -exp methods        # X10 every partitioner head-to-head
//	tables -exp parallel       # X11 deterministic-parallel speedup
//	tables -all                # everything
//
// -quick shrinks every experiment for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"fasthgp/internal/bench"
	"fasthgp/internal/gen"
)

func main() {
	var (
		table = flag.Int("table", 0, "paper table to regenerate (1 or 2)")
		exp   = flag.String("exp", "", "experiment: difficult, largenets, diameter, balance, starts, granular, scaling, quotient, methods, parallel")
		all   = flag.Bool("all", false, "run every table and experiment")
		quick = flag.Bool("quick", false, "reduced sizes for a fast run")
		seed  = flag.Int64("seed", 1989, "random seed")
	)
	flag.Parse()

	ran := false
	if *all || *table == 1 {
		runTable1(*seed, *quick)
		ran = true
	}
	if *all || *table == 2 {
		runTable2(*seed, *quick)
		ran = true
	}
	experiments := []string{}
	if *all {
		experiments = []string{"difficult", "largenets", "diameter", "balance", "starts", "granular", "scaling", "quotient", "methods", "parallel"}
	} else if *exp != "" {
		experiments = []string{*exp}
	}
	for _, e := range experiments {
		runExperiment(e, *seed, *quick)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func runTable1(seed int64, quick bool) {
	cfg := bench.Table1Config{Seed: seed}
	if quick {
		cfg.Modules, cfg.Signals, cfg.Runs = 150, 320, 3
	}
	fmt.Println("== Table 1: crossing % of large signals in the best SA partition ==")
	fmt.Printf("(avg of %d simulated-annealing runs per technology)\n", orDefault(cfg.Runs, 10))
	rows, err := bench.Table1(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.RenderTable1(rows))
}

func runTable2(seed int64, quick bool) {
	cfg := bench.Table2Config{Seed: seed}
	if quick {
		cfg.Starts = 10
		cfg.Instances = []gen.Table2Name{gen.Bd1, gen.Bd2, gen.Diff1}
	}
	fmt.Println("== Table 2: cutsize and CPU, Algorithm I vs SA vs MinCut-KL ==")
	rows, err := bench.Table2(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(bench.RenderTable2(rows))
}

func runExperiment(name string, seed int64, quick bool) {
	switch name {
	case "difficult":
		fmt.Println("== X1: difficult planted-cut instances (c = o(n^{1-1/d})) ==")
		sizes, cuts, trials := []int{100, 200, 400}, []int{2, 4, 8}, 3
		if quick {
			sizes, cuts, trials = []int{100}, []int{2, 4}, 1
		}
		rows, err := bench.Difficult(seed, trials, sizes, cuts)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderDifficult(rows))
	case "largenets":
		fmt.Println("== X2: large-net threshold ablation ==")
		rows, pct, err := bench.LargeNets(seed, nil)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderLargeNets(rows, pct))
	case "diameter":
		fmt.Println("== X3: BFS depth vs diameter, boundary fraction ==")
		sizes := []int{64, 128, 256, 512}
		if quick {
			sizes = []int{64, 128}
		}
		rows, err := bench.Diameter(seed, sizes, 5)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderDiameter(rows))
	case "balance":
		fmt.Println("== X5: completion rules: cut vs weight balance ==")
		rows, err := bench.Balance(seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderBalance(rows))
	case "starts":
		fmt.Println("== X6: multi-start ablation ==")
		counts, trials := []int{1, 5, 50}, 5
		if quick {
			counts, trials = []int{1, 5}, 2
		}
		rows, err := bench.Starts(seed, counts, trials)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderStarts(rows))
	case "granular":
		fmt.Println("== X7: granularization ==")
		rows, err := bench.Granular(seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderGranular(rows))
	case "scaling":
		fmt.Println("== X8: runtime scaling ==")
		sizes := []int{250, 500, 1000, 2000}
		if quick {
			sizes = []int{250, 500}
		}
		rows, err := bench.Scaling(seed, sizes)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderScaling(rows))
	case "methods":
		fmt.Println("== X10: all partitioners on one std-cell instance ==")
		size := 300
		if quick {
			size = 150
		}
		rows, err := bench.Methods(seed, size, size*13/6)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderMethods(rows))
	case "quotient":
		fmt.Println("== X9: quotient-cut objective ==")
		rows, err := bench.Quotient(seed)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderQuotient(rows))
	case "parallel":
		fmt.Printf("== X11: deterministic-parallel multi-start speedup (%d CPUs) ==\n", runtime.NumCPU())
		modules, starts := 10000, 50
		if quick {
			modules, starts = 2000, 16
		}
		rows, err := bench.Parallel(seed, modules, starts, 4)
		if err != nil {
			fatal(err)
		}
		fmt.Println(bench.RenderParallel(rows))
	default:
		fatal(fmt.Errorf("unknown experiment %q", name))
	}
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tables:", err)
	os.Exit(1)
}
