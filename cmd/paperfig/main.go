// Command paperfig prints the paper's worked examples (Figures 1–4,
// reconstructed per DESIGN.md §2) end to end, showing each stage of
// Algorithm I on a netlist small enough to read.
//
// Usage:
//
//	paperfig            # all figures
//	paperfig -figure 4  # one figure
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fasthgp/internal/bruteforce"
	"fasthgp/internal/core"
	"fasthgp/internal/hypergraph"
	"fasthgp/internal/intersect"
	"fasthgp/internal/paperexample"
	"fasthgp/internal/partition"
)

func main() {
	figure := flag.Int("figure", 0, "figure number 1-4 (0 = all)")
	flag.Parse()
	figs := []int{1, 2, 3, 4}
	if *figure != 0 {
		figs = []int{*figure}
	}
	for _, f := range figs {
		switch f {
		case 1:
			figure1()
		case 2, 3:
			figure23(f)
		case 4:
			figure4()
		default:
			fmt.Fprintf(os.Stderr, "paperfig: no figure %d\n", f)
			os.Exit(2)
		}
		fmt.Println()
	}
}

func figure1() {
	fmt.Println("== Figure 1: a hypergraph and its intersection graph ==")
	h := paperexample.Figure1()
	printNetlist(h)
	ig := intersect.Build(h, intersect.Options{})
	fmt.Println("intersection graph G (vertices are nets; adjacent iff they share a module):")
	for i := 0; i < ig.G.NumVertices(); i++ {
		fmt.Printf("  %s:", h.EdgeName(ig.NetOf[i]))
		for _, j := range ig.G.Neighbors(i) {
			fmt.Printf(" %s", h.EdgeName(ig.NetOf[j]))
		}
		fmt.Println()
	}
}

func pickDiameterPair(ig *intersect.Result) (int, int) {
	bestU, bestV, bestD := 0, 0, -1
	for u := 0; u < ig.G.NumVertices(); u++ {
		far, d := ig.G.Eccentricity(u)
		if d > bestD {
			bestU, bestV, bestD = u, far, d
		}
	}
	return bestU, bestV
}

func figure23(which int) {
	h := paperexample.WorkedExample()
	ig := intersect.Build(h, intersect.Options{})
	u, v := pickDiameterPair(ig)
	pb := core.PartialFromCut(h, ig, u, v)
	if which == 2 {
		fmt.Println("== Figure 2: a cut in G and the induced partial bipartition ==")
		printNetlist(h)
		fmt.Printf("double BFS from %s and %s cuts G:\n", h.EdgeName(ig.NetOf[u]), h.EdgeName(ig.NetOf[v]))
		for _, side := range []partition.Side{partition.Left, partition.Right} {
			fmt.Printf("  %v side:", side)
			for i, s := range pb.NetSide {
				if s == side {
					mark := ""
					if pb.IsBoundary[i] {
						mark = "*"
					}
					fmt.Printf(" %s%s", h.EdgeName(ig.NetOf[i]), mark)
				}
			}
			fmt.Println()
		}
		fmt.Println("  (* = boundary net)")
		p, lw, rw := pb.BaseAssignment(h)
		fmt.Printf("partial bipartition places the non-boundary nets' modules (weight %d | %d):\n", lw, rw)
		printModuleSides(h, p)
		return
	}
	fmt.Println("== Figure 3: the bipartite boundary graph and Complete-Cut ==")
	bg := pb.Boundary
	fmt.Println("boundary graph G' (cross edges only):")
	for k := 0; k < bg.G.NumVertices(); k++ {
		fmt.Printf("  %s(%v):", h.EdgeName(bg.Nets[k]), bg.SideOf[k])
		for _, l := range bg.G.Neighbors(k) {
			fmt.Printf(" %s", h.EdgeName(bg.Nets[l]))
		}
		fmt.Println()
	}
	winner := core.CompleteCutGreedy(bg)
	var winners, losers []string
	for k, w := range winner {
		if w {
			winners = append(winners, h.EdgeName(bg.Nets[k]))
		} else {
			losers = append(losers, h.EdgeName(bg.Nets[k]))
		}
	}
	sort.Strings(winners)
	sort.Strings(losers)
	fmt.Printf("winners (stay uncut): %v\n", winners)
	fmt.Printf("losers (cross the cut): %v\n", losers)
	fmt.Printf("optimum loser count (König): %d, greedy: %d\n",
		core.OptimalLoserCount(bg), core.LoserCount(winner))
}

func figure4() {
	fmt.Println("== Figure 4 / Section 2 worked example: the full pipeline ==")
	h := paperexample.WorkedExample()
	printNetlist(h)
	res, err := core.Bipartition(h, core.Options{Starts: 8, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperfig:", err)
		os.Exit(1)
	}
	fmt.Printf("Algorithm I: cutsize %d (boundary set size %d, BFS depth %d)\n",
		res.CutSize, res.Stats.BoundarySize, res.Stats.BFSDepth)
	printModuleSides(h, res.Partition)
	var crossing []string
	for _, e := range partition.CutEdges(h, res.Partition) {
		crossing = append(crossing, h.EdgeName(e))
	}
	fmt.Printf("crossing signals: %v\n", crossing)
	_, opt, err := bruteforce.MinBisection(h)
	if err == nil {
		fmt.Printf("brute-force optimum bisection: %d → Algorithm I is %s\n",
			opt, verdict(res.CutSize, opt))
	}
}

func verdict(got, opt int) string {
	if got == opt {
		return "optimal"
	}
	return fmt.Sprintf("off by %d", got-opt)
}

func printNetlist(h *hypergraph.Hypergraph) {
	fmt.Println("netlist:")
	for e := 0; e < h.NumEdges(); e++ {
		fmt.Printf("  signal %s: modules", h.EdgeName(e))
		for _, v := range h.EdgePins(e) {
			fmt.Printf(" %s", h.VertexName(v))
		}
		fmt.Println()
	}
}

func printModuleSides(h *hypergraph.Hypergraph, p *partition.Bipartition) {
	var left, right, open []string
	for v := 0; v < h.NumVertices(); v++ {
		switch p.Side(v) {
		case partition.Left:
			left = append(left, h.VertexName(v))
		case partition.Right:
			right = append(right, h.VertexName(v))
		default:
			open = append(open, h.VertexName(v))
		}
	}
	fmt.Printf("  left:  %v\n", left)
	fmt.Printf("  right: %v\n", right)
	if len(open) > 0 {
		fmt.Printf("  unplaced (boundary-only modules): %v\n", open)
	}
}
