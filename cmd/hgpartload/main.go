// Command hgpartload replays golden-corpus netlists against an
// hgpartd or hgpartcoord endpoint at a configurable request rate and
// asserts the fleet's chaos invariants from the outside:
//
//   - zero dropped accepted jobs: every request the service accepts
//     (i.e. does not refuse with a retryable 429/503) must complete
//     with a 200 — even while workers are being SIGKILLed mid-run;
//   - every 200 is oracle-certified: the returned assignment is
//     rebuilt into a Bipartition and VerifyCut recomputes the claimed
//     cut from scratch;
//   - job ids are unique: an accepted job completes exactly once;
//   - the final /jobs/{id} sweep finds every completed job terminal
//     on the service side;
//   - optionally, the p99 request latency stays under -max-p99.
//
// Refusals (429/503) are not failures: the generator honors
// Retry-After and tries again — that is the fleet's documented
// backpressure contract. Anything else that prevents a completion
// (5xx, transport error, retry budget exhausted) counts as a dropped
// job and fails the run.
//
// The request mix is deterministic: -seed drives both the netlist
// choice per tick and the per-request engine seed, so a chaos run is
// replayable.
//
// Exit status: 0 when every invariant held, 1 otherwise (the summary
// JSON on stdout says which failed).
//
// Example:
//
//	hgpartload -target http://localhost:7070 -rps 25 -duration 15s \
//	    -corpus testdata/corpus -max-p99 2s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fasthgp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// corpusEntry is one replayable netlist with its parsed hypergraph
// (the oracle needs the hypergraph to recompute cuts from scratch).
type corpusEntry struct {
	name    string
	raw     string
	h       *fasthgp.Hypergraph
	modules int
}

// result is one request's outcome.
type result struct {
	entry    int
	jobID    string
	status   int // final HTTP status (0 = transport failure)
	err      string
	latency  time.Duration
	refusals int // 429/503 bounces absorbed along the way
	verifyOK bool
}

// summary is the machine-readable run report.
type summary struct {
	Requests     int     `json:"requests"`
	Completed    int     `json:"completed"`
	Dropped      int     `json:"dropped"`
	Refusals     int     `json:"refusals_retried"`
	VerifyFailed int     `json:"verify_failed"`
	DuplicateIDs int     `json:"duplicate_job_ids"`
	SweepMissing int     `json:"sweep_missing"`
	P50MS        int64   `json:"p50_ms"`
	P99MS        int64   `json:"p99_ms"`
	MaxP99MS     int64   `json:"max_p99_ms,omitempty"`
	RPS          float64 `json:"rps"`
	DurationMS   int64   `json:"duration_ms"`

	// ExpectQuarantined echoes -expect-quarantined; QuarantineSeen
	// reports whether the target's /stats listed that worker as
	// quarantined after the run.
	ExpectQuarantined string `json:"expect_quarantined,omitempty"`
	QuarantineSeen    bool   `json:"quarantine_seen,omitempty"`

	InvariantHeld bool `json:"invariants_held"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("hgpartload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "", "base URL of the hgpartd/hgpartcoord endpoint (required)")
		corpus   = fs.String("corpus", "testdata/corpus", "directory of *.nets netlists to replay")
		rps      = fs.Float64("rps", 20, "request rate")
		duration = fs.Duration("duration", 10*time.Second, "how long to generate load")
		seed     = fs.Int64("seed", 1, "deterministic mix seed (netlist choice + per-request engine seed)")
		starts   = fs.Int("starts", 2, "multi-start count sent with each request")
		budget   = fs.Duration("budget", 0, "per-request portfolio budget passed through (0 = server default)")
		chain    = fs.String("chain", "", "fallback chain passed through (empty = server default)")
		maxP99   = fs.Duration("max-p99", 0, "fail the run when p99 latency exceeds this (0 = no bound)")
		reqCap   = fs.Duration("req-timeout", 30*time.Second, "per-request client-side cap, refusal retries included")
		expectQ  = fs.String("expect-quarantined", "", "fail unless this worker id is quarantined on the target's /stats after the run (byzantine-drill assertion; coordinator targets only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "hgpartload:", err)
		return 1
	}
	if *target == "" {
		return fail(fmt.Errorf("-target is required"))
	}
	if *rps <= 0 {
		return fail(fmt.Errorf("-rps must be positive"))
	}
	entries, err := loadCorpus(*corpus)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "hgpartload: %d netlist(s) from %s, %.1f rps for %s against %s\n",
		len(entries), *corpus, *rps, *duration, *target)

	base := strings.TrimRight(*target, "/")
	client := &http.Client{Timeout: *reqCap}
	var (
		mu      sync.Mutex
		results []result
		wg      sync.WaitGroup
	)
	interval := time.Duration(float64(time.Second) / *rps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stopAt := time.Now().Add(*duration)
	for i := 0; time.Now().Before(stopAt); i++ {
		<-ticker.C
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := fire(client, base, entries, *seed, i, *starts, *budget, *chain, *reqCap)
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	s := tally(results, *maxP99, *rps, *duration)
	s.SweepMissing = sweep(client, base, results)
	quarantineOK := true
	if *expectQ != "" {
		s.ExpectQuarantined = *expectQ
		s.QuarantineSeen = quarantineSeen(client, base, *expectQ)
		quarantineOK = s.QuarantineSeen
	}
	s.InvariantHeld = s.Dropped == 0 && s.VerifyFailed == 0 && s.DuplicateIDs == 0 &&
		s.SweepMissing == 0 && quarantineOK && (*maxP99 <= 0 || s.P99MS <= maxP99.Milliseconds())

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	enc.Encode(s)
	if !s.InvariantHeld {
		fmt.Fprintf(stderr, "hgpartload: INVARIANT VIOLATED: %d dropped, %d verify-failed, %d duplicate ids, %d missing from sweep, p99 %dms\n",
			s.Dropped, s.VerifyFailed, s.DuplicateIDs, s.SweepMissing, s.P99MS)
		if s.ExpectQuarantined != "" && !s.QuarantineSeen {
			fmt.Fprintf(stderr, "hgpartload: expected worker %q quarantined on /stats, but it was not\n", s.ExpectQuarantined)
		}
		return 1
	}
	fmt.Fprintf(stdout, "hgpartload: all invariants held: %d/%d completed (%d refusal(s) retried), p50 %dms p99 %dms\n",
		s.Completed, s.Requests, s.Refusals, s.P50MS, s.P99MS)
	return 0
}

// loadCorpus reads and parses every *.nets file under dir.
func loadCorpus(dir string) ([]corpusEntry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.nets"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var entries []corpusEntry
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		h, _, err := fasthgp.ReadNetlistFixed(strings.NewReader(string(raw)))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		entries = append(entries, corpusEntry{
			name: filepath.Base(p), raw: string(raw), h: h, modules: h.NumVertices(),
		})
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no *.nets files in %s", dir)
	}
	return entries, nil
}

// splitmix64 drives the deterministic request mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// partitionResponse is the slice of the service's 200 body the
// generator verifies (hgpartd and hgpartcoord share the shape).
type partitionResponse struct {
	JobID      string `json:"job_id"`
	Cut        int    `json:"cut"`
	Degraded   bool   `json:"degraded"`
	Assignment []int  `json:"assignment"`
	Worker     string `json:"worker"`
}

// fire sends request i: pick a netlist deterministically, POST it,
// absorb refusals with their Retry-After hint, and oracle-check the
// eventual 200. Any other terminal outcome is a dropped job.
func fire(client *http.Client, base string, entries []corpusEntry, seed int64, i, starts int, budget time.Duration, chain string, reqCap time.Duration) result {
	mix := splitmix64(uint64(seed) ^ splitmix64(uint64(i)))
	e := int(mix % uint64(len(entries)))
	query := fmt.Sprintf("starts=%d&seed=%d", starts, int64(mix%1024))
	if budget > 0 {
		query += "&budget=" + budget.String()
	}
	if chain != "" {
		query += "&chain=" + chain
	}
	url := base + "/partition?" + query

	begin := time.Now()
	deadline := begin.Add(reqCap)
	res := result{entry: e}
	for {
		resp, err := client.Post(url, "text/plain", strings.NewReader(entries[e].raw))
		if err != nil {
			res.status, res.err = 0, err.Error()
			// A transport error against the service endpoint is retried
			// like a refusal: a draining listener can drop a connection
			// before the 503 makes it out.
			if time.Now().Add(200 * time.Millisecond).After(deadline) {
				res.latency = time.Since(begin)
				return res
			}
			res.refusals++
			time.Sleep(200 * time.Millisecond)
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		res.status = resp.StatusCode
		switch {
		case resp.StatusCode == http.StatusOK:
			res.latency = time.Since(begin)
			var pr partitionResponse
			if err := json.Unmarshal(body, &pr); err != nil {
				res.err = "garbled 200 body: " + err.Error()
				return res
			}
			res.jobID = pr.JobID
			res.verifyOK = oracleCheck(entries[e], pr) == nil
			if !res.verifyOK {
				res.err = oracleCheck(entries[e], pr).Error()
			}
			return res
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			wait := 200 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			if wait > time.Second {
				wait = time.Second // a chaos run cannot afford 10s naps
			}
			if time.Now().Add(wait).After(deadline) {
				res.err = fmt.Sprintf("refused (%d) until the request deadline", resp.StatusCode)
				res.latency = time.Since(begin)
				return res
			}
			res.refusals++
			time.Sleep(wait)
		default:
			res.err = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
			res.latency = time.Since(begin)
			return res
		}
	}
}

// oracleCheck rebuilds the returned assignment into a Bipartition and
// lets the invariant oracle recompute the claimed cut from scratch.
func oracleCheck(e corpusEntry, pr partitionResponse) error {
	if len(pr.Assignment) != e.modules {
		return fmt.Errorf("assignment has %d entries, netlist has %d modules", len(pr.Assignment), e.modules)
	}
	p := fasthgp.NewBipartition(e.modules)
	for v, side := range pr.Assignment {
		switch side {
		case 0:
			p.Assign(v, fasthgp.Left)
		case 1:
			p.Assign(v, fasthgp.Right)
		default:
			return fmt.Errorf("assignment[%d] = %d, want 0 or 1", v, side)
		}
	}
	if _, err := fasthgp.VerifyCut(e.h, p, pr.Cut); err != nil {
		return fmt.Errorf("oracle rejected the result: %w", err)
	}
	return nil
}

// tally reduces the per-request results into the run summary.
func tally(results []result, p99Bound time.Duration, rps float64, duration time.Duration) summary {
	s := summary{Requests: len(results), RPS: rps, DurationMS: duration.Milliseconds(), MaxP99MS: p99Bound.Milliseconds()}
	seen := make(map[string]bool)
	var latencies []time.Duration
	for _, r := range results {
		s.Refusals += r.refusals
		if r.status != http.StatusOK {
			s.Dropped++
			continue
		}
		s.Completed++
		latencies = append(latencies, r.latency)
		if !r.verifyOK {
			s.VerifyFailed++
		}
		if r.jobID != "" {
			if seen[r.jobID] {
				s.DuplicateIDs++
			}
			seen[r.jobID] = true
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		s.P50MS = latencies[len(latencies)/2].Milliseconds()
		s.P99MS = latencies[len(latencies)*99/100].Milliseconds()
	}
	return s
}

// sweep asks the service for every completed job's terminal state: a
// job the client saw succeed must be "done" server-side too.
func sweep(client *http.Client, base string, results []result) (missing int) {
	for _, r := range results {
		if r.status != http.StatusOK || r.jobID == "" {
			continue
		}
		resp, err := client.Get(base + "/jobs/" + r.jobID)
		if err != nil {
			missing++
			continue
		}
		var info struct {
			Status string `json:"status"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		// An evicted id (404 from a bounded job table) is not a failure:
		// the client already holds the verified result. Only a tracked
		// job in a non-done state contradicts what the client observed.
		if resp.StatusCode == http.StatusNotFound {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			missing++
			continue
		}
		if err := json.Unmarshal(body, &info); err != nil || info.Status != "done" {
			missing++
		}
	}
	return missing
}

// quarantineSeen asks the target's /stats whether the named worker is
// on the quarantined list. The coordinator publishes the list as it
// quarantines, so a short retry loop covers the race between the last
// invalid answer and the registry transition.
func quarantineSeen(client *http.Client, base, id string) bool {
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(200 * time.Millisecond)
		}
		resp, err := client.Get(base + "/stats")
		if err != nil {
			continue
		}
		var st struct {
			Quarantined []string `json:"quarantined"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if json.Unmarshal(body, &st) != nil {
			continue
		}
		for _, q := range st.Quarantined {
			if q == id {
				return true
			}
		}
	}
	return false
}
