package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"fasthgp"
)

const testNets = `module a
module b
module c
module d
net n1 a b
net n2 b c
net n3 c d
`

func writeCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		body := testNets + fmt.Sprintf("net extra%d a d\n", i)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("c%d.nets", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// halfSplit builds an honest balanced partition (first half left) and
// its true cut for the parsed netlist.
func halfSplit(h *fasthgp.Hypergraph) (assignment []int, cut int) {
	n := h.NumVertices()
	assignment = make([]int, n)
	for v := n / 2; v < n; v++ {
		assignment[v] = 1
	}
	for e := 0; e < h.NumEdges(); e++ {
		var left, right bool
		for _, v := range h.EdgePins(e) {
			if assignment[v] == 0 {
				left = true
			} else {
				right = true
			}
		}
		if left && right {
			cut++
		}
	}
	return assignment, cut
}

// okService answers /partition with an honest half-split partition
// and its recomputed cut, and tracks jobs for the sweep.
func okService(t *testing.T) *httptest.Server {
	t.Helper()
	var seq atomic.Int64
	var mu sync.Mutex
	jobs := make(map[string]bool)
	mux := http.NewServeMux()
	mux.HandleFunc("/partition", func(w http.ResponseWriter, r *http.Request) {
		raw := new(bytes.Buffer)
		raw.ReadFrom(r.Body)
		h, _, err := fasthgp.ReadNetlistFixed(strings.NewReader(raw.String()))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		id := fmt.Sprintf("j%d", seq.Add(1))
		mu.Lock()
		jobs[id] = true
		mu.Unlock()
		assignment, cut := halfSplit(h)
		json.NewEncoder(w).Encode(map[string]any{
			"job_id":     id,
			"cut":        cut,
			"assignment": assignment,
		})
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/jobs/")
		mu.Lock()
		known := jobs[id]
		mu.Unlock()
		if !known {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"id": id, "status": "done"})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestLoadRunAllInvariantsHold(t *testing.T) {
	srv := okService(t)
	corpus := writeCorpus(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-corpus", corpus,
		"-rps", "200", "-duration", "150ms", "-seed", "7",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s; stdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), `"invariants_held": true`) {
		t.Errorf("summary missing invariants_held: %s", out.String())
	}
	if strings.Contains(out.String(), `"completed": 0,`) {
		t.Errorf("no requests completed: %s", out.String())
	}
}

// TestLoadRunDetectsDrops: a service that 500s every request must
// fail the run with dropped > 0.
func TestLoadRunDetectsDrops(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	corpus := writeCorpus(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-corpus", corpus,
		"-rps", "100", "-duration", "100ms",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, out.String())
	}
	if !strings.Contains(errb.String(), "INVARIANT VIOLATED") {
		t.Errorf("no violation report on stderr: %s", errb.String())
	}
}

// TestLoadRunDetectsLyingService: a wrong claimed cut must fail the
// oracle check.
func TestLoadRunDetectsLyingService(t *testing.T) {
	var seq atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw := new(bytes.Buffer)
		raw.ReadFrom(r.Body)
		h, _, err := fasthgp.ReadNetlistFixed(strings.NewReader(raw.String()))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		assignment, cut := halfSplit(h)
		json.NewEncoder(w).Encode(map[string]any{
			"job_id":     fmt.Sprintf("j%d", seq.Add(1)),
			"cut":        cut + 1, // a lie the oracle must catch
			"assignment": assignment,
		})
	}))
	defer srv.Close()
	corpus := writeCorpus(t)
	var out, errb bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-corpus", corpus,
		"-rps", "100", "-duration", "100ms",
	}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (oracle must reject); stdout: %s", code, out.String())
	}
	if !strings.Contains(out.String(), `"verify_failed"`) || strings.Contains(out.String(), `"verify_failed": 0`) {
		t.Errorf("verify_failed not reported: %s", out.String())
	}
}

func TestOracleCheckRejectsBadAssignment(t *testing.T) {
	h, _, err := fasthgp.ReadNetlistFixed(strings.NewReader(testNets))
	if err != nil {
		t.Fatal(err)
	}
	e := corpusEntry{h: h, modules: h.NumVertices()}
	assignment, cut := halfSplit(h)
	if err := oracleCheck(e, partitionResponse{Cut: cut, Assignment: assignment}); err != nil {
		t.Errorf("honest response rejected: %v", err)
	}
	if err := oracleCheck(e, partitionResponse{Cut: cut + 1, Assignment: assignment}); err == nil {
		t.Error("wrong cut accepted")
	}
	if err := oracleCheck(e, partitionResponse{Cut: 0, Assignment: []int{0}}); err == nil {
		t.Error("truncated assignment accepted")
	}
	if err := oracleCheck(e, partitionResponse{Cut: 0, Assignment: []int{0, 1, 2, 0}}); err == nil {
		t.Error("out-of-range side accepted")
	}
}
